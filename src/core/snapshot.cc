// Versioned, checksummed snapshots of a fitted LevaPipeline.
//
// Format layout (all integers little-endian, see common/io.h):
//
//   manifest:
//     [8]  magic "LEVASNP1"
//     [4]  u32 format version (5)
//     [4]  u32 config hash       crc32c of the "config" section payload
//     [4]  u32 section count
//     per section:
//       string  name             (u64 length + bytes)
//       u8      kind             0 = inline, 1 = bulk
//       kind 0: u64 payload length, u32 payload crc32c, payload bytes
//       kind 1: u64 payload length, u64 file offset, u64 page size,
//               u32 crc32c per page (ceil(length / page size) of them,
//               each computed over the full zero-padded page)
//     [4]  u32 manifest crc32c   over every manifest byte above
//   zero padding to the next page boundary
//   bulk payloads, in manifest order, each starting page-aligned and
//   zero-padded to a page multiple
//
// Inline sections carry the metadata (config, textifier, graph/embedding
// key tables, resolver cache); bulk sections carry the big arrays — the
// embedding matrix and the graph's CSR adjacency — whose on-disk bytes are
// exactly their in-memory layout, so a loader can mmap the file and serve
// them in place (O(pages touched) load, page-cache sharing across
// processes). The embedding matrix is written at the storage tier recorded
// in the config (v4): "embedding.data" (fp64), "embedding.bf16", or
// "embedding.q8" + "embedding.scales" (int8 with per-row fp32 scales) — and
// served at that tier, dequantized on the fly by the featurize gather. Every byte of the file is covered by a checksum or required
// to be zero: the manifest by the manifest CRC, inline payloads by their
// section CRCs, bulk payloads (padding included) by their per-page CRCs,
// and inter-section gaps by an explicit zero check — so heap loads detect
// any bit flip or truncation, while mmap loads can defer the per-page work
// (SnapshotLoadOptions::verify_pages) and still localize damage to a page
// when they do verify. Unknown *extra* sections are ignored on load so
// version N readers accept version N writers that learned new optional
// sections without a format break; missing required sections are an error.
#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/io.h"
#include "common/parallel.h"
#include "core/pipeline.h"

namespace leva {
namespace {

constexpr char kMagic[8] = {'L', 'E', 'V', 'A', 'S', 'N', 'P', '1'};
constexpr size_t kHeaderBytes = sizeof(kMagic) + 3 * sizeof(uint32_t);
// Bulk payload alignment and checksum granularity. 4 KiB matches the page
// size everywhere we run; a mapped load touches whole pages anyway, so finer
// CRC granularity would buy nothing.
constexpr uint64_t kPageSize = 4096;
// Parse guard: a corrupt section count must not turn into a huge loop.
constexpr uint32_t kMaxSections = 64;

uint64_t RoundUp(uint64_t v, uint64_t a) { return (v + a - 1) / a * a; }

void SaveConfig(const LevaConfig& c, BufferWriter* out) {
  out->PutU64(c.textify.bin_count);
  out->PutBool(c.textify.force_histogram_type);
  out->PutU8(static_cast<uint8_t>(c.textify.forced_type));
  out->PutDouble(c.textify.key_distinct_ratio);
  out->PutDouble(c.textify.list_detect_ratio);

  out->PutDouble(c.graph.theta_range);
  out->PutDouble(c.graph.theta_min);
  out->PutBool(c.graph.weighted);

  out->PutU8(static_cast<uint8_t>(c.method));
  out->PutU64(c.embedding_dim);
  out->PutU8(static_cast<uint8_t>(c.featurization));
  out->PutU64(c.memory_budget_bytes);

  out->PutU64(c.walks.walk_length);
  out->PutU64(c.walks.epochs);
  out->PutBool(c.walks.weighted);
  out->PutBool(c.walks.balanced_restarts);
  out->PutU64(c.walks.restart_epochs);
  out->PutU64(c.walks.visit_limit);
  out->PutDouble(c.walks.p);
  out->PutDouble(c.walks.q);
  out->PutU64(c.walks.threads);
  out->PutU8(static_cast<uint8_t>(c.walks.engine));
  out->PutU64(c.walks.batched_auto_threshold_bytes);

  out->PutU64(c.word2vec.dim);
  out->PutU64(c.word2vec.window);
  out->PutU64(c.word2vec.negative);
  out->PutDouble(c.word2vec.subsample);
  out->PutDouble(c.word2vec.learning_rate);
  out->PutU64(c.word2vec.epochs);
  out->PutDouble(c.word2vec.unigram_power);
  out->PutU64(c.word2vec.threads);
  out->PutBool(c.word2vec.deterministic);

  out->PutU64(c.mf.dim);
  out->PutU64(c.mf.oversample);
  out->PutU64(c.mf.power_iterations);
  out->PutDouble(c.mf.tau);
  out->PutU64(c.mf.window);
  out->PutU64(c.mf.max_row_entries);
  out->PutBool(c.mf.spectral_propagation);
  out->PutU64(c.mf.chebyshev_order);
  out->PutDouble(c.mf.mu);
  out->PutDouble(c.mf.theta);
  out->PutU64(c.mf.threads);

  out->PutU64(c.line.dim);
  out->PutU64(c.line.negative);
  out->PutU64(c.line.samples_per_edge);
  out->PutDouble(c.line.learning_rate);
  out->PutDouble(c.line.unigram_power);

  out->PutU64(c.seed);
  out->PutU64(c.threads);
  out->PutU64(c.featurize_batch_size);
  out->PutU8(static_cast<uint8_t>(c.quantize_tier));
}

Status CheckEnum(uint8_t v, uint8_t max, const char* what) {
  if (v > max) {
    return Status::InvalidArgument(std::string("corrupt config: bad ") + what +
                                   " " + std::to_string(v));
  }
  return Status::OK();
}

Status LoadConfig(BufferReader* in, LevaConfig* c) {
  uint8_t u8 = 0;
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->textify.bin_count));
  LEVA_RETURN_IF_ERROR(in->GetBool(&c->textify.force_histogram_type));
  LEVA_RETURN_IF_ERROR(in->GetU8(&u8));
  LEVA_RETURN_IF_ERROR(
      CheckEnum(u8, static_cast<uint8_t>(HistogramType::kEquiDepth),
                "histogram type"));
  c->textify.forced_type = static_cast<HistogramType>(u8);
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->textify.key_distinct_ratio));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->textify.list_detect_ratio));

  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->graph.theta_range));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->graph.theta_min));
  LEVA_RETURN_IF_ERROR(in->GetBool(&c->graph.weighted));

  LEVA_RETURN_IF_ERROR(in->GetU8(&u8));
  LEVA_RETURN_IF_ERROR(
      CheckEnum(u8, static_cast<uint8_t>(EmbeddingMethod::kLine), "method"));
  c->method = static_cast<EmbeddingMethod>(u8);
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->embedding_dim));
  LEVA_RETURN_IF_ERROR(in->GetU8(&u8));
  LEVA_RETURN_IF_ERROR(CheckEnum(
      u8, static_cast<uint8_t>(Featurization::kRowPlusValue), "featurization"));
  c->featurization = static_cast<Featurization>(u8);
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->memory_budget_bytes));

  LEVA_RETURN_IF_ERROR(in->GetU64(&c->walks.walk_length));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->walks.epochs));
  LEVA_RETURN_IF_ERROR(in->GetBool(&c->walks.weighted));
  LEVA_RETURN_IF_ERROR(in->GetBool(&c->walks.balanced_restarts));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->walks.restart_epochs));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->walks.visit_limit));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->walks.p));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->walks.q));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->walks.threads));
  uint8_t engine = 0;
  LEVA_RETURN_IF_ERROR(in->GetU8(&engine));
  if (engine > static_cast<uint8_t>(WalkEngine::kBatched)) {
    return Status::InvalidArgument("unknown walk engine id in snapshot config");
  }
  c->walks.engine = static_cast<WalkEngine>(engine);
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->walks.batched_auto_threshold_bytes));

  LEVA_RETURN_IF_ERROR(in->GetU64(&c->word2vec.dim));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->word2vec.window));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->word2vec.negative));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->word2vec.subsample));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->word2vec.learning_rate));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->word2vec.epochs));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->word2vec.unigram_power));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->word2vec.threads));
  LEVA_RETURN_IF_ERROR(in->GetBool(&c->word2vec.deterministic));

  LEVA_RETURN_IF_ERROR(in->GetU64(&c->mf.dim));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->mf.oversample));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->mf.power_iterations));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->mf.tau));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->mf.window));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->mf.max_row_entries));
  LEVA_RETURN_IF_ERROR(in->GetBool(&c->mf.spectral_propagation));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->mf.chebyshev_order));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->mf.mu));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->mf.theta));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->mf.threads));

  LEVA_RETURN_IF_ERROR(in->GetU64(&c->line.dim));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->line.negative));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->line.samples_per_edge));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->line.learning_rate));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->line.unigram_power));

  LEVA_RETURN_IF_ERROR(in->GetU64(&c->seed));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->threads));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->featurize_batch_size));
  LEVA_RETURN_IF_ERROR(in->GetU8(&u8));
  LEVA_RETURN_IF_ERROR(CheckEnum(
      u8, static_cast<uint8_t>(StorageTier::kInt8), "storage tier"));
  c->quantize_tier = static_cast<StorageTier>(u8);
  return Status::OK();
}

void AppendInlineSection(const std::string& name, const std::string& payload,
                         BufferWriter* file) {
  file->PutString(name);
  file->PutU8(0);  // kind: inline
  file->PutU64(payload.size());
  file->PutU32(Crc32c(payload));
  file->PutBytes(payload.data(), payload.size());
}

// One page-aligned raw array on its way into a snapshot.
struct BulkSpec {
  const char* name;
  const char* data;
  uint64_t len;  // unpadded bytes
  std::vector<uint32_t> page_crcs;
};

template <typename T>
BulkSpec MakeBulk(const char* name, ArrayView<T> view) {
  BulkSpec b;
  b.name = name;
  b.data = reinterpret_cast<const char*>(view.data());
  b.len = view.size() * sizeof(T);
  const uint64_t pages = (b.len + kPageSize - 1) / kPageSize;
  b.page_crcs.reserve(pages);
  // Each CRC covers a full padded page: the zeros that pad the final page
  // on disk are folded in here, so the padding itself is tamper-evident.
  static const std::string zeros(kPageSize, '\0');
  for (uint64_t p = 0; p < pages; ++p) {
    const uint64_t take = std::min<uint64_t>(kPageSize, b.len - p * kPageSize);
    uint32_t crc = Crc32c(b.data + p * kPageSize, take);
    if (take < kPageSize) crc = Crc32c(zeros.data(), kPageSize - take, crc);
    b.page_crcs.push_back(crc);
  }
  return b;
}

// A bulk section as parsed back out of a manifest.
struct BulkRef {
  std::string name;
  uint64_t len = 0;
  uint64_t offset = 0;
  uint64_t page_size = 0;
  std::vector<uint32_t> page_crcs;
};

// Materializes bulk section `name` as a typed array: a zero-copy borrow of
// the region when mapping is requested and the bytes are suitably aligned,
// an owned heap copy otherwise.
template <typename T>
Result<OwnedOrMapped<T>> TakeBulk(const std::string& path,
                                  const std::vector<BulkRef>& bulks,
                                  const char* name,
                                  const std::shared_ptr<const MappedRegion>&
                                      region,
                                  bool borrow) {
  const BulkRef* ref = nullptr;
  for (const BulkRef& b : bulks) {
    if (b.name == name) {
      ref = &b;
      break;
    }
  }
  if (ref == nullptr) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "' is missing required bulk section '" +
                                   std::string(name) + "'");
  }
  if (ref->len % sizeof(T) != 0) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' bulk section '" + std::string(name) +
        "' holds " + std::to_string(ref->len) + " byte(s), not a multiple of " +
        std::to_string(sizeof(T)));
  }
  const char* bytes = region->data() + ref->offset;
  const size_t count = ref->len / sizeof(T);
  if (borrow &&
      reinterpret_cast<uintptr_t>(bytes) % alignof(T) == 0) {
    return OwnedOrMapped<T>::Mapped(region,
                                    reinterpret_cast<const T*>(bytes), count);
  }
  std::vector<T> owned(count);
  std::memcpy(owned.data(), bytes, ref->len);
  return OwnedOrMapped<T>(std::move(owned));
}

std::vector<std::string> RenderFeatureNames(size_t dim, size_t width) {
  std::vector<std::string> names;
  names.reserve(width);
  for (size_t j = 0; j < dim; ++j) names.push_back("emb" + std::to_string(j));
  if (width == 2 * dim) {
    for (size_t j = 0; j < dim; ++j) names.push_back("val" + std::to_string(j));
  }
  return names;
}

// Parses and validates a whole snapshot out of `region` into a fresh
// ServingState. Everything is validated before the state is returned, so a
// corrupt file can never yield a partially loaded model.
Result<std::shared_ptr<LevaPipeline::ServingState>> LoadState(
    const std::string& path, Env* env, SnapshotLoadOptions options) {
  std::shared_ptr<const MappedRegion> region;
  if (options.use_mmap) {
    LEVA_ASSIGN_OR_RETURN(region, env->NewMmapReadableFile(path));
  } else {
    LEVA_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(path));
    region = MappedRegion::FromString(std::move(bytes));
  }
  const std::string_view bytes(region->data(), region->size());

  if (bytes.size() < kHeaderBytes + sizeof(uint32_t)) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' is truncated: " +
        std::to_string(bytes.size()) + " byte(s), need at least " +
        std::to_string(kHeaderBytes + sizeof(uint32_t)));
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a Leva snapshot (bad magic)");
  }
  BufferReader reader(bytes);
  {
    std::string_view skip;
    LEVA_RETURN_IF_ERROR(reader.GetBytes(sizeof(kMagic), &skip));
  }
  // Version skew must be reported as such — before any checksum math, whose
  // layout the version itself defines. Version 1 files (element-wise
  // serialized arrays, whole-file trailing CRC) are not readable by this
  // build; the error names both versions so the fix is obvious.
  uint32_t version = 0;
  LEVA_RETURN_IF_ERROR(reader.GetU32(&version));
  if (version != LevaPipeline::kSnapshotVersion) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' has format version " +
        std::to_string(version) + "; this build reads format version " +
        std::to_string(LevaPipeline::kSnapshotVersion) +
        (version < LevaPipeline::kSnapshotVersion
             ? " — re-save the model with this build to upgrade it"
             : ""));
  }
  uint32_t config_hash = 0;
  uint32_t section_count = 0;
  LEVA_RETURN_IF_ERROR(reader.GetU32(&config_hash));
  LEVA_RETURN_IF_ERROR(reader.GetU32(&section_count));
  if (section_count > kMaxSections) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "' declares an implausible " +
                                   std::to_string(section_count) +
                                   " sections: corrupt manifest");
  }

  std::unordered_map<std::string, std::string_view> sections;
  std::vector<BulkRef> bulks;
  for (uint32_t i = 0; i < section_count; ++i) {
    std::string name;
    uint8_t kind = 0;
    uint64_t len = 0;
    LEVA_RETURN_IF_ERROR(reader.GetString(&name));
    LEVA_RETURN_IF_ERROR(reader.GetU8(&kind));
    LEVA_RETURN_IF_ERROR(reader.GetU64(&len));
    if (kind == 0) {
      uint32_t crc = 0;
      LEVA_RETURN_IF_ERROR(reader.GetU32(&crc));
      std::string_view payload;
      LEVA_RETURN_IF_ERROR(reader.GetBytes(len, &payload));
      if (Crc32c(payload) != crc) {
        return Status::InvalidArgument("snapshot '" + path + "' section '" +
                                       name + "' failed its checksum");
      }
      sections.emplace(std::move(name), payload);
    } else if (kind == 1) {
      BulkRef b;
      b.name = std::move(name);
      b.len = len;
      LEVA_RETURN_IF_ERROR(reader.GetU64(&b.offset));
      LEVA_RETURN_IF_ERROR(reader.GetU64(&b.page_size));
      if (b.page_size < 512 || b.page_size > (uint64_t{1} << 24) ||
          (b.page_size & (b.page_size - 1)) != 0) {
        return Status::InvalidArgument(
            "snapshot '" + path + "' bulk section '" + b.name +
            "' declares invalid page size " + std::to_string(b.page_size));
      }
      const uint64_t pages = (b.len + b.page_size - 1) / b.page_size;
      // The CRC table is the bulk of the manifest (one u32 per 4 KiB of
      // payload); decode it in one shot rather than per-entry.
      std::string_view crc_bytes;
      LEVA_RETURN_IF_ERROR(
          reader.GetBytes(pages * sizeof(uint32_t), &crc_bytes));
      b.page_crcs.resize(pages);
      std::memcpy(b.page_crcs.data(), crc_bytes.data(), crc_bytes.size());
      bulks.push_back(std::move(b));
    } else {
      return Status::InvalidArgument(
          "snapshot '" + path + "' section '" + name +
          "' has unknown kind " + std::to_string(kind));
    }
  }
  uint32_t manifest_crc = 0;
  LEVA_RETURN_IF_ERROR(reader.GetU32(&manifest_crc));
  const size_t manifest_end = reader.position();
  const uint32_t actual_manifest_crc =
      Crc32c(bytes.data(), manifest_end - sizeof(uint32_t));
  if (manifest_crc != actual_manifest_crc) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' failed its manifest checksum (stored " +
        std::to_string(manifest_crc) + ", computed " +
        std::to_string(actual_manifest_crc) + "): corrupt or torn write");
  }

  // Layout audit: bulk payloads must tile the rest of the file in manifest
  // order — page-aligned, non-overlapping, with only zero bytes between the
  // manifest (or a previous payload's padded end) and the next payload, and
  // nothing after the last one. Combined with the manifest CRC above and the
  // per-page CRCs below, this pins every byte of the file.
  uint64_t cursor = manifest_end;
  for (const BulkRef& b : bulks) {
    if (b.offset % b.page_size != 0 || b.offset < cursor ||
        b.offset > bytes.size()) {
      return Status::InvalidArgument(
          "snapshot '" + path + "' bulk section '" + b.name +
          "' has a misplaced payload (offset " + std::to_string(b.offset) +
          ")");
    }
    for (uint64_t i = cursor; i < b.offset; ++i) {
      if (bytes[i] != '\0') {
        return Status::InvalidArgument(
            "snapshot '" + path + "' has non-zero padding at offset " +
            std::to_string(i) + ": corrupt");
      }
    }
    const uint64_t padded = RoundUp(b.len, b.page_size);
    if (padded < b.len || b.offset + padded < b.offset ||
        b.offset + padded > bytes.size()) {
      return Status::InvalidArgument(
          "snapshot '" + path + "' bulk section '" + b.name +
          "' overruns the file (offset " + std::to_string(b.offset) +
          ", length " + std::to_string(b.len) + ", file size " +
          std::to_string(bytes.size()) + ")");
    }
    cursor = b.offset + padded;
  }
  if (cursor != bytes.size()) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' has " +
        std::to_string(bytes.size() - cursor) +
        " trailing byte(s) past the last section: corrupt or truncated");
  }

  // Page verification — the O(model size) part a lazy mmap load defers to
  // VerifyStorage(). Damage is localized to (section, page).
  if (options.verify_pages) {
    for (const BulkRef& b : bulks) {
      for (size_t p = 0; p < b.page_crcs.size(); ++p) {
        const uint32_t actual =
            Crc32c(bytes.data() + b.offset + p * b.page_size, b.page_size);
        if (actual != b.page_crcs[p]) {
          return Status::InvalidArgument(
              "snapshot '" + path + "' bulk section '" + b.name + "' page " +
              std::to_string(p) + " (file offset " +
              std::to_string(b.offset + p * b.page_size) +
              ") failed its page checksum");
        }
      }
    }
  }

  const auto section = [&](const char* name) -> Result<std::string_view> {
    const auto it = sections.find(name);
    if (it == sections.end()) {
      return Status::InvalidArgument("snapshot '" + path +
                                     "' is missing required section '" +
                                     std::string(name) + "'");
    }
    return it->second;
  };

  auto state = std::make_shared<LevaPipeline::ServingState>();

  LEVA_ASSIGN_OR_RETURN(std::string_view config_bytes, section("config"));
  if (Crc32c(config_bytes) != config_hash) {
    return Status::InvalidArgument(
        "snapshot '" + path +
        "' config hash does not match its manifest header");
  }
  {
    BufferReader in(config_bytes);
    LEVA_RETURN_IF_ERROR(LoadConfig(&in, &state->config));
  }

  {
    LEVA_ASSIGN_OR_RETURN(std::string_view meta_bytes, section("meta"));
    BufferReader in(meta_bytes);
    uint8_t u8 = 0;
    LEVA_RETURN_IF_ERROR(in.GetU8(&u8));
    LEVA_RETURN_IF_ERROR(CheckEnum(
        u8, static_cast<uint8_t>(EmbeddingMethod::kLine), "chosen method"));
    state->chosen = static_cast<EmbeddingMethod>(u8);
    // v5: the applied-WAL position. Recovery (RecoverFromLog) replays only
    // update-log records past this byte offset.
    LEVA_RETURN_IF_ERROR(in.GetU64(&state->wal_offset));
    LEVA_RETURN_IF_ERROR(in.GetU64(&state->wal_records));
  }

  {
    LEVA_ASSIGN_OR_RETURN(std::string_view b, section("textifier"));
    BufferReader in(b);
    LEVA_RETURN_IF_ERROR(state->textifier.Load(&in));
  }

  // The bulk arrays: zero-copy views for a mapped load, heap copies
  // otherwise. The graph's structural walk is skipped exactly when page
  // verification is skipped (both are the O(model) part of load); the page
  // CRCs written at save time carry the guarantee in that mode.
  LEVA_ASSIGN_OR_RETURN(
      OwnedOrMapped<uint64_t> offsets,
      TakeBulk<uint64_t>(path, bulks, "graph.offsets", region,
                         options.use_mmap));
  LEVA_ASSIGN_OR_RETURN(
      OwnedOrMapped<NodeId> targets,
      TakeBulk<NodeId>(path, bulks, "graph.targets", region,
                       options.use_mmap));
  LEVA_ASSIGN_OR_RETURN(
      OwnedOrMapped<float> weights,
      TakeBulk<float>(path, bulks, "graph.weights", region,
                      options.use_mmap));
  {
    LEVA_ASSIGN_OR_RETURN(std::string_view b, section("graph"));
    BufferReader in(b);
    LEVA_RETURN_IF_ERROR(state->graph.Load(
        &in, std::move(offsets), std::move(targets), std::move(weights),
        /*validate_structure=*/options.verify_pages));
  }
  // The embedding's vector block arrives at the storage tier recorded in the
  // config (the save path wrote both), so the loader knows which bulk
  // sections to take before parsing the embedding metadata; Embedding::Load
  // then cross-checks its own tier byte against the shape of the storage it
  // is handed, so a config/embedding tier mismatch is rejected.
  EmbeddingStorage storage;
  switch (state->config.quantize_tier) {
    case StorageTier::kBf16: {
      LEVA_ASSIGN_OR_RETURN(storage.bf16,
                            TakeBulk<uint16_t>(path, bulks, "embedding.bf16",
                                               region, options.use_mmap));
      break;
    }
    case StorageTier::kInt8: {
      LEVA_ASSIGN_OR_RETURN(storage.q8,
                            TakeBulk<int8_t>(path, bulks, "embedding.q8",
                                             region, options.use_mmap));
      LEVA_ASSIGN_OR_RETURN(storage.scales,
                            TakeBulk<float>(path, bulks, "embedding.scales",
                                            region, options.use_mmap));
      break;
    }
    case StorageTier::kFp64: {
      LEVA_ASSIGN_OR_RETURN(storage.fp64,
                            TakeBulk<double>(path, bulks, "embedding.data",
                                             region, options.use_mmap));
      break;
    }
  }
  {
    LEVA_ASSIGN_OR_RETURN(std::string_view b, section("embedding"));
    BufferReader in(b);
    LEVA_RETURN_IF_ERROR(state->embedding.Load(&in, std::move(storage)));
  }

  state->resolver = TokenResolver(&state->embedding, &state->graph,
                                  state->config.graph.weighted);
  if (const auto it = sections.find("resolver"); it != sections.end()) {
    BufferReader in(it->second);
    LEVA_RETURN_IF_ERROR(state->resolver.Load(&in));
  }

  const size_t dim = state->embedding.dim();
  const size_t width =
      state->config.featurization == Featurization::kRowPlusValue ? 2 * dim
                                                                  : dim;
  state->feature_names = RenderFeatureNames(dim, width);

  if (options.use_mmap) {
    // Keep the mapping (the stores borrow from it) and the page-CRC table
    // so VerifyStorage can run the deferred integrity check on demand.
    state->region = std::move(region);
    state->bulk_pages.reserve(bulks.size());
    for (BulkRef& b : bulks) {
      LevaPipeline::BulkPages pages;
      pages.name = std::move(b.name);
      pages.file_offset = b.offset;
      pages.page_size = b.page_size;
      pages.payload_len = b.len;
      pages.page_crcs = std::move(b.page_crcs);
      state->bulk_pages.push_back(std::move(pages));
    }
  }
  return state;
}

}  // namespace

Status LevaPipeline::SaveSnapshot(const std::string& path, Env* env) const {
  const std::shared_ptr<const ServingState> state =
      serving_.load();
  if (state == nullptr) {
    return Status::FailedPrecondition(
        "cannot snapshot an unfitted pipeline: call Fit first");
  }
  // Default: the tier the served model's config asks for, so a fit-then-save
  // honors the configured --quantize and a load-then-save round-trips the
  // snapshot's own tier.
  return SaveSnapshot(path, state->config.quantize_tier, env);
}

Status LevaPipeline::SaveSnapshot(const std::string& path, StorageTier tier,
                                  Env* env) const {
  const std::shared_ptr<const ServingState> state =
      serving_.load();
  if (state == nullptr) {
    return Status::FailedPrecondition(
        "cannot snapshot an unfitted pipeline: call Fit first");
  }
  const ServingState& s = *state;
  if (env == nullptr) env = Env::Default();

  // Compact-on-save: the graph section serializes base CSR arrays only, so a
  // model carrying streaming-update delta segments is folded into a single
  // CSR off to the side first (node ids preserved, weights repaired to
  // 1/deg when the graph is weighted). The served graph is never touched.
  LevaGraph compacted_graph;
  const LevaGraph* graph_ptr = &s.graph;
  if (s.graph.HasDelta()) {
    LEVA_ASSIGN_OR_RETURN(compacted_graph,
                          s.graph.Compacted(s.config.graph.weighted));
    graph_ptr = &compacted_graph;
  }
  const LevaGraph& g = *graph_ptr;

  // Quantize-on-save: when the served store is not already at the requested
  // tier, re-encode a private copy off to the side (the serving store is
  // immutable). The bulk sections below then point at whichever store holds
  // the bytes being written.
  Embedding requantized;
  const Embedding* emb = &s.embedding;
  if (s.embedding.tier() != tier) {
    requantized = s.embedding.WithTier(tier);
    emb = &requantized;
  }
  // The serialized config records the tier actually written, so the loader
  // (and any subsequent re-save) sees this snapshot's true precision.
  LevaConfig saved_config = s.config;
  saved_config.quantize_tier = tier;

  BufferWriter config;
  SaveConfig(saved_config, &config);
  BufferWriter textifier;
  s.textifier.Save(&textifier);
  BufferWriter graph;
  g.Save(&graph);
  BufferWriter embedding;
  emb->Save(&embedding);
  BufferWriter meta;
  meta.PutU8(static_cast<uint8_t>(s.chosen));
  meta.PutU64(s.wal_offset);
  meta.PutU64(s.wal_records);
  // The warm serving cache rides along; it resolves against the very stores
  // serialized above, so it is always coherent with them. The section is
  // optional on load (a cold cache is functionally identical) but still
  // CRC-framed like every other section.
  BufferWriter resolver;
  {
    std::lock_guard<std::mutex> lock(s.resolver_mu);
    s.resolver.Save(&resolver);
  }

  // The big arrays leave as raw page-aligned bytes: their in-memory layout
  // (little-endian, fixed-width) IS the on-disk format, so a loader can map
  // them in place.
  std::vector<BulkSpec> bulks;
  bulks.push_back(MakeBulk<uint64_t>("graph.offsets", g.offsets()));
  bulks.push_back(MakeBulk<NodeId>("graph.targets", g.targets()));
  bulks.push_back(MakeBulk<float>("graph.weights", g.edge_weights()));
  switch (tier) {
    case StorageTier::kBf16:
      bulks.push_back(MakeBulk<uint16_t>("embedding.bf16", emb->bf16_data()));
      break;
    case StorageTier::kInt8:
      bulks.push_back(MakeBulk<int8_t>("embedding.q8", emb->int8_data()));
      bulks.push_back(MakeBulk<float>("embedding.scales", emb->scales()));
      break;
    case StorageTier::kFp64:
      bulks.push_back(MakeBulk<double>("embedding.data", emb->data()));
      break;
  }

  const uint32_t config_hash = Crc32c(config.data());
  const auto emit_manifest = [&](const std::vector<uint64_t>& offsets) {
    BufferWriter m;
    m.PutBytes(kMagic, sizeof(kMagic));
    m.PutU32(kSnapshotVersion);
    m.PutU32(config_hash);
    m.PutU32(static_cast<uint32_t>(6 + bulks.size()));
    AppendInlineSection("config", config.data(), &m);
    AppendInlineSection("meta", meta.data(), &m);
    AppendInlineSection("textifier", textifier.data(), &m);
    AppendInlineSection("graph", graph.data(), &m);
    AppendInlineSection("embedding", embedding.data(), &m);
    AppendInlineSection("resolver", resolver.data(), &m);
    for (size_t i = 0; i < bulks.size(); ++i) {
      m.PutString(bulks[i].name);
      m.PutU8(1);  // kind: bulk
      m.PutU64(bulks[i].len);
      m.PutU64(offsets[i]);
      m.PutU64(kPageSize);
      for (const uint32_t crc : bulks[i].page_crcs) m.PutU32(crc);
    }
    return m;
  };

  // Bulk offsets depend on the manifest's size, which is independent of the
  // offset *values* (fixed-width u64s) — so lay out against a probe pass,
  // then emit for real.
  std::vector<uint64_t> offsets(bulks.size(), 0);
  const size_t manifest_len =
      emit_manifest(offsets).size() + sizeof(uint32_t);  // + manifest CRC
  uint64_t cursor = RoundUp(manifest_len, kPageSize);
  for (size_t i = 0; i < bulks.size(); ++i) {
    offsets[i] = cursor;
    cursor += RoundUp(bulks[i].len, kPageSize);
  }
  BufferWriter manifest = emit_manifest(offsets);
  manifest.PutU32(Crc32c(manifest.data()));
  manifest.AlignTo(kPageSize);

  // Stream the manifest and the raw arrays straight to the temp file — the
  // bulk payloads are never copied into an assembly buffer.
  static const std::string zeros(kPageSize, '\0');
  std::vector<std::string_view> chunks;
  chunks.reserve(1 + 2 * bulks.size());
  chunks.push_back(manifest.data());
  for (const BulkSpec& b : bulks) {
    if (b.len > 0) chunks.push_back(std::string_view(b.data, b.len));
    const uint64_t pad = RoundUp(b.len, kPageSize) - b.len;
    if (pad > 0) chunks.push_back(std::string_view(zeros.data(), pad));
  }
  return AtomicWriteChunks(env, path, chunks);
}

Status LevaPipeline::LoadSnapshot(const std::string& path, Env* env,
                                  SnapshotLoadOptions options) {
  if (env == nullptr) env = Env::Default();
  LEVA_ASSIGN_OR_RETURN(std::shared_ptr<ServingState> state,
                        LoadState(path, env, options));
  // Full restore: the pipeline behaves as if it had been constructed with
  // the snapshot's config and fitted. (ReloadSnapshot, by contrast, swaps
  // only the model.)
  config_ = state->config;
  serving_threads_.store(config_.threads, std::memory_order_relaxed);
  serving_batch_.store(config_.featurize_batch_size,
                       std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    profile_.Clear();
    profile_.set_threads(ResolveThreads(config_.threads));
    featurize_stats_ = FeaturizeStats{};
  }
  serving_.store(std::move(state));
  return Status::OK();
}

Status LevaPipeline::ReloadSnapshot(const std::string& path, Env* env,
                                    SnapshotLoadOptions options) {
  if (env == nullptr) env = Env::Default();
  // The whole load runs against shadow state; nothing this pipeline serves
  // is touched until the single atomic publish below. Featurize calls in
  // flight hold shared_ptr references to the old state and finish on it; the
  // old model (and any mmap region backing it) is destroyed when the last
  // such reference drops.
  LEVA_ASSIGN_OR_RETURN(std::shared_ptr<ServingState> state,
                        LoadState(path, env, options));
  if (options.require_same_tier) {
    const std::shared_ptr<const ServingState> current = serving_.load();
    if (current != nullptr &&
        current->embedding.tier() != state->embedding.tier()) {
      return Status::FailedPrecondition(
          "snapshot '" + path + "' stores the embedding at tier " +
          StorageTierName(state->embedding.tier()) +
          " but this pipeline currently serves tier " +
          StorageTierName(current->embedding.tier()) +
          "; the incumbent model keeps serving — re-save the snapshot at the "
          "serving tier, or reload without the same-tier requirement to "
          "change precision deliberately");
    }
  }
  serving_.store(std::move(state));
  return Status::OK();
}

Status LevaPipeline::VerifyStorage() const {
  const std::shared_ptr<const ServingState> state =
      serving_.load();
  if (state == nullptr) {
    return Status::FailedPrecondition("pipeline is not fitted");
  }
  if (state->region == nullptr) return Status::OK();  // nothing mapped
  const char* base = state->region->data();
  for (const BulkPages& b : state->bulk_pages) {
    for (size_t p = 0; p < b.page_crcs.size(); ++p) {
      const uint32_t actual =
          Crc32c(base + b.file_offset + p * b.page_size, b.page_size);
      if (actual != b.page_crcs[p]) {
        return Status::InvalidArgument(
            "mapped snapshot bulk section '" + b.name + "' page " +
            std::to_string(p) + " failed its page checksum");
      }
    }
  }
  return Status::OK();
}

}  // namespace leva
