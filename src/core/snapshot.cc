// Versioned, checksummed snapshots of a fitted LevaPipeline.
//
// File layout (all integers little-endian, see common/io.h):
//
//   [8]  magic "LEVASNP1"
//   [4]  u32 format version
//   [4]  u32 config hash        crc32c of the "config" section payload
//   [4]  u32 section count
//   per section:
//        string  name           (u64 length + bytes)
//        u64     payload length
//        u32     payload crc32c
//        [...]   payload
//   [4]  u32 file crc32c        over every byte above
//
// The trailing file CRC catches truncation and bit flips anywhere; the
// per-section CRCs additionally localize which component is damaged, and the
// header's config hash ties the manifest to the exact configuration the
// artifact was fitted under. Unknown *extra* sections are ignored on load so
// version N readers accept version N writers that learned new optional
// sections without a format break; missing required sections are an error.
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/io.h"
#include "common/parallel.h"
#include "core/pipeline.h"

namespace leva {
namespace {

constexpr char kMagic[8] = {'L', 'E', 'V', 'A', 'S', 'N', 'P', '1'};
constexpr size_t kHeaderBytes = sizeof(kMagic) + 3 * sizeof(uint32_t);

void SaveConfig(const LevaConfig& c, BufferWriter* out) {
  out->PutU64(c.textify.bin_count);
  out->PutBool(c.textify.force_histogram_type);
  out->PutU8(static_cast<uint8_t>(c.textify.forced_type));
  out->PutDouble(c.textify.key_distinct_ratio);
  out->PutDouble(c.textify.list_detect_ratio);

  out->PutDouble(c.graph.theta_range);
  out->PutDouble(c.graph.theta_min);
  out->PutBool(c.graph.weighted);

  out->PutU8(static_cast<uint8_t>(c.method));
  out->PutU64(c.embedding_dim);
  out->PutU8(static_cast<uint8_t>(c.featurization));
  out->PutU64(c.memory_budget_bytes);

  out->PutU64(c.walks.walk_length);
  out->PutU64(c.walks.epochs);
  out->PutBool(c.walks.weighted);
  out->PutBool(c.walks.balanced_restarts);
  out->PutU64(c.walks.restart_epochs);
  out->PutU64(c.walks.visit_limit);
  out->PutDouble(c.walks.p);
  out->PutDouble(c.walks.q);
  out->PutU64(c.walks.threads);

  out->PutU64(c.word2vec.dim);
  out->PutU64(c.word2vec.window);
  out->PutU64(c.word2vec.negative);
  out->PutDouble(c.word2vec.subsample);
  out->PutDouble(c.word2vec.learning_rate);
  out->PutU64(c.word2vec.epochs);
  out->PutDouble(c.word2vec.unigram_power);
  out->PutU64(c.word2vec.threads);
  out->PutBool(c.word2vec.deterministic);

  out->PutU64(c.mf.dim);
  out->PutU64(c.mf.oversample);
  out->PutU64(c.mf.power_iterations);
  out->PutDouble(c.mf.tau);
  out->PutU64(c.mf.window);
  out->PutU64(c.mf.max_row_entries);
  out->PutBool(c.mf.spectral_propagation);
  out->PutU64(c.mf.chebyshev_order);
  out->PutDouble(c.mf.mu);
  out->PutDouble(c.mf.theta);
  out->PutU64(c.mf.threads);

  out->PutU64(c.line.dim);
  out->PutU64(c.line.negative);
  out->PutU64(c.line.samples_per_edge);
  out->PutDouble(c.line.learning_rate);
  out->PutDouble(c.line.unigram_power);

  out->PutU64(c.seed);
  out->PutU64(c.threads);
  out->PutU64(c.featurize_batch_size);
}

Status CheckEnum(uint8_t v, uint8_t max, const char* what) {
  if (v > max) {
    return Status::InvalidArgument(std::string("corrupt config: bad ") + what +
                                   " " + std::to_string(v));
  }
  return Status::OK();
}

Status LoadConfig(BufferReader* in, LevaConfig* c) {
  uint8_t u8 = 0;
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->textify.bin_count));
  LEVA_RETURN_IF_ERROR(in->GetBool(&c->textify.force_histogram_type));
  LEVA_RETURN_IF_ERROR(in->GetU8(&u8));
  LEVA_RETURN_IF_ERROR(
      CheckEnum(u8, static_cast<uint8_t>(HistogramType::kEquiDepth),
                "histogram type"));
  c->textify.forced_type = static_cast<HistogramType>(u8);
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->textify.key_distinct_ratio));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->textify.list_detect_ratio));

  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->graph.theta_range));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->graph.theta_min));
  LEVA_RETURN_IF_ERROR(in->GetBool(&c->graph.weighted));

  LEVA_RETURN_IF_ERROR(in->GetU8(&u8));
  LEVA_RETURN_IF_ERROR(
      CheckEnum(u8, static_cast<uint8_t>(EmbeddingMethod::kLine), "method"));
  c->method = static_cast<EmbeddingMethod>(u8);
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->embedding_dim));
  LEVA_RETURN_IF_ERROR(in->GetU8(&u8));
  LEVA_RETURN_IF_ERROR(CheckEnum(
      u8, static_cast<uint8_t>(Featurization::kRowPlusValue), "featurization"));
  c->featurization = static_cast<Featurization>(u8);
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->memory_budget_bytes));

  LEVA_RETURN_IF_ERROR(in->GetU64(&c->walks.walk_length));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->walks.epochs));
  LEVA_RETURN_IF_ERROR(in->GetBool(&c->walks.weighted));
  LEVA_RETURN_IF_ERROR(in->GetBool(&c->walks.balanced_restarts));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->walks.restart_epochs));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->walks.visit_limit));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->walks.p));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->walks.q));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->walks.threads));

  LEVA_RETURN_IF_ERROR(in->GetU64(&c->word2vec.dim));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->word2vec.window));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->word2vec.negative));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->word2vec.subsample));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->word2vec.learning_rate));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->word2vec.epochs));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->word2vec.unigram_power));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->word2vec.threads));
  LEVA_RETURN_IF_ERROR(in->GetBool(&c->word2vec.deterministic));

  LEVA_RETURN_IF_ERROR(in->GetU64(&c->mf.dim));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->mf.oversample));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->mf.power_iterations));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->mf.tau));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->mf.window));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->mf.max_row_entries));
  LEVA_RETURN_IF_ERROR(in->GetBool(&c->mf.spectral_propagation));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->mf.chebyshev_order));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->mf.mu));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->mf.theta));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->mf.threads));

  LEVA_RETURN_IF_ERROR(in->GetU64(&c->line.dim));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->line.negative));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->line.samples_per_edge));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->line.learning_rate));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&c->line.unigram_power));

  LEVA_RETURN_IF_ERROR(in->GetU64(&c->seed));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->threads));
  LEVA_RETURN_IF_ERROR(in->GetU64(&c->featurize_batch_size));
  return Status::OK();
}

void AppendSection(const std::string& name, const std::string& payload,
                   BufferWriter* file) {
  file->PutString(name);
  file->PutU64(payload.size());
  file->PutU32(Crc32c(payload));
  file->PutBytes(payload.data(), payload.size());
}

}  // namespace

Status LevaPipeline::SaveSnapshot(const std::string& path, Env* env) const {
  if (!fitted_) {
    return Status::FailedPrecondition(
        "cannot snapshot an unfitted pipeline: call Fit first");
  }
  if (env == nullptr) env = Env::Default();

  BufferWriter config;
  SaveConfig(config_, &config);
  BufferWriter textifier;
  textifier_.Save(&textifier);
  BufferWriter graph;
  graph_.Save(&graph);
  BufferWriter embedding;
  embedding_.Save(&embedding);
  BufferWriter meta;
  meta.PutU8(static_cast<uint8_t>(chosen_));
  // The warm serving cache rides along only when it still belongs to these
  // stores (it always does on a freshly fitted pipeline; a moved-from or
  // copied pipeline has a stale one that Featurize would rebuild anyway).
  BufferWriter resolver;
  const bool resolver_valid = resolver_cache_.embedding() == &embedding_ &&
                              resolver_cache_.graph() == &graph_ &&
                              resolver_cache_.weighted() ==
                                  config_.graph.weighted;
  TokenResolver empty(nullptr, nullptr, false);
  (resolver_valid ? resolver_cache_ : empty).Save(&resolver);

  BufferWriter file;
  file.PutBytes(kMagic, sizeof(kMagic));
  file.PutU32(kSnapshotVersion);
  file.PutU32(Crc32c(config.data()));  // manifest: config hash
  file.PutU32(6);                      // section count
  AppendSection("config", config.data(), &file);
  AppendSection("meta", meta.data(), &file);
  AppendSection("textifier", textifier.data(), &file);
  AppendSection("graph", graph.data(), &file);
  AppendSection("embedding", embedding.data(), &file);
  // The resolver section is optional on load (a cold cache is functionally
  // identical) but still CRC-framed like every other section.
  AppendSection("resolver", resolver.data(), &file);
  file.PutU32(Crc32c(file.data()));  // file CRC: the genuinely final bytes

  return AtomicWriteFile(env, path, file.data());
}

Status LevaPipeline::LoadSnapshot(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  LEVA_ASSIGN_OR_RETURN(const std::string bytes, env->ReadFileToString(path));

  if (bytes.size() < kHeaderBytes + sizeof(uint32_t)) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' is truncated: " +
        std::to_string(bytes.size()) + " byte(s), need at least " +
        std::to_string(kHeaderBytes + sizeof(uint32_t)));
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a Leva snapshot (bad magic)");
  }
  // Whole-file integrity first: any truncation or bit flip anywhere is
  // caught here before any section is interpreted.
  uint32_t stored_file_crc = 0;
  std::memcpy(&stored_file_crc, bytes.data() + bytes.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  const uint32_t actual_file_crc =
      Crc32c(bytes.data(), bytes.size() - sizeof(uint32_t));
  if (stored_file_crc != actual_file_crc) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' failed its file checksum (stored " +
        std::to_string(stored_file_crc) + ", computed " +
        std::to_string(actual_file_crc) + "): corrupt or torn write");
  }

  BufferReader reader(
      std::string_view(bytes).substr(sizeof(kMagic),
                                     bytes.size() - sizeof(kMagic) -
                                         sizeof(uint32_t)));
  uint32_t version = 0;
  uint32_t config_hash = 0;
  uint32_t section_count = 0;
  LEVA_RETURN_IF_ERROR(reader.GetU32(&version));
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' has format version " +
        std::to_string(version) + "; this build reads version " +
        std::to_string(kSnapshotVersion));
  }
  LEVA_RETURN_IF_ERROR(reader.GetU32(&config_hash));
  LEVA_RETURN_IF_ERROR(reader.GetU32(&section_count));

  std::unordered_map<std::string, std::string_view> sections;
  for (uint32_t i = 0; i < section_count; ++i) {
    std::string name;
    uint64_t len = 0;
    uint32_t crc = 0;
    LEVA_RETURN_IF_ERROR(reader.GetString(&name));
    LEVA_RETURN_IF_ERROR(reader.GetU64(&len));
    LEVA_RETURN_IF_ERROR(reader.GetU32(&crc));
    std::string_view payload;
    LEVA_RETURN_IF_ERROR(reader.GetBytes(len, &payload));
    if (Crc32c(payload) != crc) {
      return Status::InvalidArgument("snapshot '" + path + "' section '" +
                                     name + "' failed its checksum");
    }
    sections.emplace(std::move(name), payload);
  }

  const auto section = [&](const char* name) -> Result<std::string_view> {
    const auto it = sections.find(name);
    if (it == sections.end()) {
      return Status::InvalidArgument("snapshot '" + path +
                                     "' is missing required section '" +
                                     std::string(name) + "'");
    }
    return it->second;
  };

  // Parse and validate everything into locals; this pipeline's state is
  // only replaced after the whole snapshot proves coherent.
  LEVA_ASSIGN_OR_RETURN(std::string_view config_bytes, section("config"));
  if (Crc32c(config_bytes) != config_hash) {
    return Status::InvalidArgument(
        "snapshot '" + path +
        "' config hash does not match its manifest header");
  }
  LevaConfig config;
  {
    BufferReader in(config_bytes);
    LEVA_RETURN_IF_ERROR(LoadConfig(&in, &config));
  }

  EmbeddingMethod chosen;
  {
    LEVA_ASSIGN_OR_RETURN(std::string_view meta_bytes, section("meta"));
    BufferReader in(meta_bytes);
    uint8_t u8 = 0;
    LEVA_RETURN_IF_ERROR(in.GetU8(&u8));
    LEVA_RETURN_IF_ERROR(CheckEnum(
        u8, static_cast<uint8_t>(EmbeddingMethod::kLine), "chosen method"));
    chosen = static_cast<EmbeddingMethod>(u8);
  }

  Textifier textifier;
  {
    LEVA_ASSIGN_OR_RETURN(std::string_view b, section("textifier"));
    BufferReader in(b);
    LEVA_RETURN_IF_ERROR(textifier.Load(&in));
  }
  LevaGraph graph;
  {
    LEVA_ASSIGN_OR_RETURN(std::string_view b, section("graph"));
    BufferReader in(b);
    LEVA_RETURN_IF_ERROR(graph.Load(&in));
  }
  Embedding embedding;
  {
    LEVA_ASSIGN_OR_RETURN(std::string_view b, section("embedding"));
    BufferReader in(b);
    LEVA_RETURN_IF_ERROR(embedding.Load(&in));
  }

  // Everything validated: commit, then rebuild the derived serving state
  // against the new stores' final addresses.
  config_ = std::move(config);
  textifier_ = std::move(textifier);
  graph_ = std::move(graph);
  embedding_ = std::move(embedding);
  chosen_ = chosen;
  profile_.Clear();
  profile_.set_threads(ResolveThreads(config_.threads));
  featurize_stats_ = FeaturizeStats{};
  feature_names_cache_.clear();
  resolver_cache_ =
      TokenResolver(&embedding_, &graph_, config_.graph.weighted);
  if (const auto it = sections.find("resolver"); it != sections.end()) {
    BufferReader in(it->second);
    LEVA_RETURN_IF_ERROR(resolver_cache_.Load(&in));
  }
  fitted_ = true;
  return Status::OK();
}

}  // namespace leva
