#include "text/histogram.h"

#include <algorithm>
#include <cmath>

namespace leva {

double Kurtosis(const std::vector<double>& values) {
  const size_t n = values.size();
  if (n < 2) return 0.0;
  double mean = 0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(n);
  double m2 = 0;
  double m4 = 0;
  for (double v : values) {
    const double d = v - mean;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= static_cast<double>(n);
  m4 /= static_cast<double>(n);
  if (m2 <= 0) return 0.0;
  return m4 / (m2 * m2);
}

Histogram Histogram::Fit(const std::vector<double>& values, size_t num_bins,
                         HistogramType type) {
  Histogram h;
  h.type_ = type;
  if (values.empty() || num_bins <= 1) return h;

  if (type == HistogramType::kEquiWidth) {
    const auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
    const double mn = *mn_it;
    const double mx = *mx_it;
    if (mx <= mn) return h;  // constant column: one bin
    const double width = (mx - mn) / static_cast<double>(num_bins);
    h.edges_.reserve(num_bins - 1);
    for (size_t i = 1; i < num_bins; ++i) {
      h.edges_.push_back(mn + width * static_cast<double>(i));
    }
  } else {
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    h.edges_.reserve(num_bins - 1);
    for (size_t i = 1; i < num_bins; ++i) {
      const double q = static_cast<double>(i) / static_cast<double>(num_bins);
      const size_t idx = std::min(
          sorted.size() - 1,
          static_cast<size_t>(q * static_cast<double>(sorted.size())));
      const double edge = sorted[idx];
      // Collapse duplicate quantiles so bins stay strictly increasing.
      if (h.edges_.empty() || edge > h.edges_.back()) {
        h.edges_.push_back(edge);
      }
    }
  }
  return h;
}

Histogram Histogram::FitAuto(const std::vector<double>& values,
                             size_t num_bins) {
  const HistogramType type = Kurtosis(values) > kHeavyTailKurtosis
                                 ? HistogramType::kEquiDepth
                                 : HistogramType::kEquiWidth;
  return Fit(values, num_bins, type);
}

}  // namespace leva
