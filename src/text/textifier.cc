#include "text/textifier.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <utility>

#include "common/string_util.h"

namespace leva {
namespace {

// True when the column holds doubles with fractional parts, which disqualifies
// it as a Key (heuristic ii of Section 4.1).
bool IsFloatingColumn(const Column& col) {
  if (col.type != DataType::kDouble) return false;
  for (const Value& v : col.values) {
    if (v.is_double()) {
      const double d = v.as_double();
      if (std::isfinite(d) && d != std::floor(d)) return true;
    }
  }
  return false;
}

// Separator detection for formatted-list strings: returns the separator and
// the fraction of non-null values containing it.
std::pair<char, double> DetectListSeparator(const Column& col) {
  // Space is a valid separator too: multi-word strings textify word-by-word,
  // the same cell granularity EmbDI uses.
  const char candidates[] = {',', ';', '|', ' '};
  constexpr size_t kNumCandidates = sizeof(candidates);
  char best = ',';
  size_t best_hits = 0;
  size_t non_null = 0;
  size_t hits_by[kNumCandidates] = {0};
  for (const Value& v : col.values) {
    if (!v.is_string()) continue;
    ++non_null;
    const std::string& s = v.as_string();
    for (size_t i = 0; i < kNumCandidates; ++i) {
      if (s.find(candidates[i]) != std::string::npos) ++hits_by[i];
    }
  }
  for (size_t i = 0; i < kNumCandidates; ++i) {
    if (hits_by[i] > best_hits) {
      best_hits = hits_by[i];
      best = candidates[i];
    }
  }
  const double ratio =
      non_null == 0 ? 0.0
                    : static_cast<double>(best_hits) / static_cast<double>(non_null);
  return {best, ratio};
}

}  // namespace

std::string ColumnClassName(ColumnClass c) {
  switch (c) {
    case ColumnClass::kKey:
      return "key";
    case ColumnClass::kNumeric:
      return "numeric";
    case ColumnClass::kDatetime:
      return "datetime";
    case ColumnClass::kStringAtomic:
      return "string";
    case ColumnClass::kStringList:
      return "string_list";
  }
  return "unknown";
}

Status Textifier::Fit(const Database& db) {
  columns_.clear();
  attr_names_.clear();
  for (const Table& table : db.tables()) {
    for (const Column& col : table.columns()) {
      const std::string qualified = table.name() + "." + col.name;
      ColumnState state;
      state.attr_id = static_cast<uint32_t>(attr_names_.size());
      attr_names_.push_back(qualified);

      const bool is_float = IsFloatingColumn(col);
      const bool near_unique = col.DistinctRatio() >= options_.key_distinct_ratio;
      if (col.type == DataType::kDatetime) {
        // Datetimes are binned regardless of uniqueness (Section 4.1):
        // encoding raw timestamps directly would explode cardinality and
        // lose temporal distance.
        state.cls = ColumnClass::kDatetime;
      } else if (near_unique && !is_float) {
        state.cls = ColumnClass::kKey;
      } else if (col.type == DataType::kInt || col.type == DataType::kDouble) {
        state.cls = ColumnClass::kNumeric;
      } else {
        const auto [sep, ratio] = DetectListSeparator(col);
        if (ratio >= options_.list_detect_ratio) {
          state.cls = ColumnClass::kStringList;
          state.list_separator = sep;
        } else {
          state.cls = ColumnClass::kStringAtomic;
        }
      }

      if (state.cls == ColumnClass::kNumeric ||
          state.cls == ColumnClass::kDatetime) {
        std::vector<double> numeric;
        numeric.reserve(col.size());
        for (const Value& v : col.values) {
          if (v.is_numeric()) numeric.push_back(v.ToNumeric());
        }
        state.histogram =
            options_.force_histogram_type
                ? Histogram::Fit(numeric, options_.bin_count, options_.forced_type)
                : Histogram::FitAuto(numeric, options_.bin_count);
      }
      columns_.emplace(qualified, std::move(state));
    }
  }
  return Status::OK();
}

const Textifier::ColumnState* Textifier::FindState(
    const std::string& table_name, const std::string& column_name) const {
  const auto it = columns_.find(table_name + "." + column_name);
  return it == columns_.end() ? nullptr : &it->second;
}

void Textifier::EmitTokens(const ColumnState& state, const Value& value,
                           std::vector<TextToken>* out) const {
  if (value.is_null()) return;  // true nulls never emit tokens
  switch (state.cls) {
    case ColumnClass::kNumeric:
    case ColumnClass::kDatetime: {
      if (!value.is_numeric()) {
        // Dirty cell in a numeric column (e.g. a stray "?"): emit the raw
        // token and let the voting refinement deal with it.
        const std::string raw(Trim(value.ToDisplayString()));
        if (!raw.empty()) out->push_back({state.attr_id, raw});
        return;
      }
      const size_t bin = state.histogram.BinOf(value.ToNumeric());
      // Token is "<attribute>#bin<k>": numeric tokens are attribute-scoped so
      // different attributes never collide on bin ids, but the same attribute
      // appearing in several tables (a denormalized copy) still links up.
      const std::string& qualified = attr_names_[state.attr_id];
      const size_t dot = qualified.find('.');
      const std::string attr = qualified.substr(dot + 1);
      out->push_back({state.attr_id, attr + "#bin" + std::to_string(bin)});
      return;
    }
    case ColumnClass::kKey:
    case ColumnClass::kStringAtomic: {
      const std::string raw(Trim(value.ToDisplayString()));
      if (!raw.empty()) out->push_back({state.attr_id, raw});
      return;
    }
    case ColumnClass::kStringList: {
      const std::string raw = value.ToDisplayString();
      for (const std::string& part : Split(raw, state.list_separator)) {
        const std::string elem(Trim(part));
        if (!elem.empty()) out->push_back({state.attr_id, elem});
      }
      return;
    }
  }
}

Result<TextifiedTable> Textifier::Transform(const Table& table) const {
  TextifiedTable out;
  out.table_name = table.name();
  out.rows.resize(table.NumRows());

  std::vector<const ColumnState*> states;
  states.reserve(table.NumColumns());
  for (const Column& col : table.columns()) {
    const ColumnState* state = FindState(table.name(), col.name);
    if (state == nullptr) {
      return Status::NotFound("column '" + table.name() + "." + col.name +
                              "' was not fitted");
    }
    states.push_back(state);
  }
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      EmitTokens(*states[c], table.at(r, c), &out.rows[r]);
    }
  }
  return out;
}

Result<std::vector<std::string>> Textifier::TransformCell(
    const std::string& table_name, const std::string& column_name,
    const Value& value) const {
  const ColumnState* state = FindState(table_name, column_name);
  if (state == nullptr) {
    return Status::NotFound("column '" + table_name + "." + column_name +
                            "' was not fitted");
  }
  std::vector<TextToken> tokens;
  EmitTokens(*state, value, &tokens);
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (TextToken& t : tokens) out.push_back(std::move(t.token));
  return out;
}

Result<TextifiedColumn> Textifier::TransformColumn(
    const std::string& table_name, const Column& column, size_t row_begin,
    size_t row_end) const {
  const ColumnState* state = FindState(table_name, column.name);
  if (state == nullptr) {
    return Status::NotFound("column '" + table_name + "." + column.name +
                            "' was not fitted");
  }
  if (row_end == static_cast<size_t>(-1)) row_end = column.size();
  if (row_begin > row_end || row_end > column.size()) {
    return Status::InvalidArgument("row range [" + std::to_string(row_begin) +
                                   ", " + std::to_string(row_end) +
                                   ") out of bounds for column '" +
                                   column.name + "'");
  }

  TextifiedColumn out;
  out.offsets.reserve(row_end - row_begin + 1);
  out.offsets.push_back(0);
  out.tokens.reserve(row_end - row_begin);
  // Materializes a derived token into the backing store; the returned view
  // stays valid because deque growth never relocates elements.
  const auto store = [&out](std::string s) -> std::string_view {
    out.storage.push_back(std::move(s));
    return out.storage.back();
  };
  // String values are viewed in place; int/double renderings have to be
  // materialized. Ints (key columns) render via to_chars straight into the
  // backing store — the same minimal decimal digits ToDisplayString's
  // to_string emits, without the intermediate std::string.
  const auto raw_view = [&store, &out](const Value& value) -> std::string_view {
    if (value.is_string()) return std::string_view(value.as_string());
    if (value.is_int()) {
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof(buf), value.as_int());
      out.storage.emplace_back(buf, res.ptr);
      return out.storage.back();
    }
    return store(value.ToDisplayString());
  };
  switch (state->cls) {
    case ColumnClass::kNumeric:
    case ColumnClass::kDatetime: {
      // The attribute-scoped bin prefix is a pure function of the column;
      // build it once instead of re-deriving it per cell (EmitTokens pays a
      // substr + two string concats for every value). Bin labels are a pure
      // function of the bin id, so each is materialized at most once per
      // call rather than concatenated per cell.
      const std::string& qualified = attr_names_[state->attr_id];
      const std::string prefix = qualified.substr(qualified.find('.') + 1) +
                                 "#bin";
      constexpr uint32_t kNoEntry = static_cast<uint32_t>(-1);
      std::vector<uint32_t> bin_dict_id(state->histogram.num_bins(), kNoEntry);
      for (size_t r = row_begin; r < row_end; ++r) {
        const Value& value = column.values[r];
        if (!value.is_null()) {
          if (value.is_numeric()) {
            const size_t bin = state->histogram.BinOf(value.ToNumeric());
            if (bin_dict_id[bin] == kNoEntry) {
              bin_dict_id[bin] = static_cast<uint32_t>(out.dict.size());
              out.dict.push_back(store(prefix + std::to_string(bin)));
            }
            out.dict_ids.push_back(bin_dict_id[bin]);
            out.tokens.push_back(out.dict[bin_dict_id[bin]]);
          } else {
            // Dirty non-numeric cells are rare; give each occurrence its own
            // dict entry rather than dedup-hashing here (downstream interning
            // dedups them anyway).
            const std::string_view raw = Trim(raw_view(value));
            if (!raw.empty()) {
              out.dict_ids.push_back(static_cast<uint32_t>(out.dict.size()));
              out.dict.push_back(raw);
              out.tokens.push_back(raw);
            }
          }
        }
        out.offsets.push_back(out.tokens.size());
      }
      break;
    }
    case ColumnClass::kKey:
    case ColumnClass::kStringAtomic: {
      for (size_t r = row_begin; r < row_end; ++r) {
        const Value& value = column.values[r];
        if (!value.is_null()) {
          const std::string_view raw = Trim(raw_view(value));
          if (!raw.empty()) out.tokens.push_back(raw);
        }
        out.offsets.push_back(out.tokens.size());
      }
      break;
    }
    case ColumnClass::kStringList: {
      const char sep = state->list_separator;
      for (size_t r = row_begin; r < row_end; ++r) {
        const Value& value = column.values[r];
        if (!value.is_null()) {
          // In-place Split + Trim over a view: same parts as
          // Split(raw, sep) — empty fields kept, then trimmed and dropped
          // when empty — without materializing any of them.
          const std::string_view raw = raw_view(value);
          size_t start = 0;
          while (true) {
            const size_t pos = raw.find(sep, start);
            const size_t len =
                (pos == std::string_view::npos ? raw.size() : pos) - start;
            const std::string_view elem = Trim(raw.substr(start, len));
            if (!elem.empty()) out.tokens.push_back(elem);
            if (pos == std::string_view::npos) break;
            start = pos + 1;
          }
        }
        out.offsets.push_back(out.tokens.size());
      }
      break;
    }
  }
  return out;
}

Result<ColumnClass> Textifier::ClassOf(const std::string& table_name,
                                       const std::string& column_name) const {
  const ColumnState* state = FindState(table_name, column_name);
  if (state == nullptr) {
    return Status::NotFound("column '" + table_name + "." + column_name +
                            "' was not fitted");
  }
  return state->cls;
}

void Textifier::Save(BufferWriter* out) const {
  out->PutU64(options_.bin_count);
  out->PutBool(options_.force_histogram_type);
  out->PutU8(static_cast<uint8_t>(options_.forced_type));
  out->PutDouble(options_.key_distinct_ratio);
  out->PutDouble(options_.list_detect_ratio);

  out->PutU64(attr_names_.size());
  for (const std::string& name : attr_names_) out->PutString(name);

  std::vector<const std::pair<const std::string, ColumnState>*> sorted;
  sorted.reserve(columns_.size());
  for (const auto& kv : columns_) sorted.push_back(&kv);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  out->PutU64(sorted.size());
  for (const auto* kv : sorted) {
    out->PutString(kv->first);
    const ColumnState& state = kv->second;
    out->PutU32(state.attr_id);
    out->PutU8(static_cast<uint8_t>(state.cls));
    out->PutU8(static_cast<uint8_t>(state.list_separator));
    out->PutU8(static_cast<uint8_t>(state.histogram.type()));
    const std::vector<double>& edges = state.histogram.edges();
    out->PutU64(edges.size());
    for (const double e : edges) out->PutDouble(e);
  }
}

Status Textifier::Load(BufferReader* in) {
  // Parse into locals first so a corrupt buffer leaves this textifier empty
  // instead of half-loaded.
  std::unordered_map<std::string, ColumnState> columns;
  std::vector<std::string> attr_names;
  columns_.clear();
  attr_names_.clear();

  TextifyOptions options;
  uint64_t u64 = 0;
  uint8_t u8 = 0;
  LEVA_RETURN_IF_ERROR(in->GetU64(&u64));
  options.bin_count = u64;
  LEVA_RETURN_IF_ERROR(in->GetBool(&options.force_histogram_type));
  LEVA_RETURN_IF_ERROR(in->GetU8(&u8));
  if (u8 > static_cast<uint8_t>(HistogramType::kEquiDepth)) {
    return Status::InvalidArgument("corrupt textifier: bad histogram type " +
                                   std::to_string(u8));
  }
  options.forced_type = static_cast<HistogramType>(u8);
  LEVA_RETURN_IF_ERROR(in->GetDouble(&options.key_distinct_ratio));
  LEVA_RETURN_IF_ERROR(in->GetDouble(&options.list_detect_ratio));

  uint64_t attr_count = 0;
  LEVA_RETURN_IF_ERROR(in->GetU64(&attr_count));
  attr_names.reserve(attr_count);
  for (uint64_t i = 0; i < attr_count; ++i) {
    std::string name;
    LEVA_RETURN_IF_ERROR(in->GetString(&name));
    attr_names.push_back(std::move(name));
  }

  uint64_t column_count = 0;
  LEVA_RETURN_IF_ERROR(in->GetU64(&column_count));
  for (uint64_t i = 0; i < column_count; ++i) {
    std::string qualified;
    LEVA_RETURN_IF_ERROR(in->GetString(&qualified));
    ColumnState state;
    LEVA_RETURN_IF_ERROR(in->GetU32(&state.attr_id));
    if (state.attr_id >= attr_names.size()) {
      return Status::InvalidArgument("corrupt textifier: column '" + qualified +
                                     "' has attr id " +
                                     std::to_string(state.attr_id) + " of " +
                                     std::to_string(attr_names.size()));
    }
    LEVA_RETURN_IF_ERROR(in->GetU8(&u8));
    if (u8 > static_cast<uint8_t>(ColumnClass::kStringList)) {
      return Status::InvalidArgument("corrupt textifier: bad column class " +
                                     std::to_string(u8));
    }
    state.cls = static_cast<ColumnClass>(u8);
    LEVA_RETURN_IF_ERROR(in->GetU8(&u8));
    state.list_separator = static_cast<char>(u8);
    LEVA_RETURN_IF_ERROR(in->GetU8(&u8));
    if (u8 > static_cast<uint8_t>(HistogramType::kEquiDepth)) {
      return Status::InvalidArgument("corrupt textifier: bad histogram type " +
                                     std::to_string(u8));
    }
    const HistogramType type = static_cast<HistogramType>(u8);
    uint64_t edge_count = 0;
    LEVA_RETURN_IF_ERROR(in->GetU64(&edge_count));
    std::vector<double> edges;
    edges.reserve(edge_count);
    for (uint64_t e = 0; e < edge_count; ++e) {
      double v = 0;
      LEVA_RETURN_IF_ERROR(in->GetDouble(&v));
      edges.push_back(v);
    }
    state.histogram = Histogram(type, std::move(edges));
    if (!columns.emplace(std::move(qualified), std::move(state)).second) {
      return Status::InvalidArgument("corrupt textifier: duplicate column");
    }
  }
  options_ = options;
  attr_names_ = std::move(attr_names);
  columns_ = std::move(columns);
  return Status::OK();
}

}  // namespace leva
