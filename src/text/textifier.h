#ifndef LEVA_TEXT_TEXTIFIER_H_
#define LEVA_TEXT_TEXTIFIER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "table/table.h"
#include "text/histogram.h"

namespace leva {

/// Textification strategy chosen per column (Section 4.1).
enum class ColumnClass {
  kKey,          ///< near-unique non-float column; values encoded directly
  kNumeric,      ///< binned via histogram; token = "<attr>#bin<k>"
  kDatetime,     ///< binned like numeric (epoch seconds)
  kStringAtomic, ///< value encoded directly
  kStringList,   ///< comma/semicolon-separated list; each element a token
};

std::string ColumnClassName(ColumnClass c);

/// Tunable textification parameters (Table 2).
struct TextifyOptions {
  /// Number of histogram bins for numeric/datetime columns.
  size_t bin_count = 50;
  /// When set, overrides the kurtosis-based histogram selection.
  bool force_histogram_type = false;
  HistogramType forced_type = HistogramType::kEquiWidth;
  /// Distinct/total ratio above which a non-float column is a Key.
  double key_distinct_ratio = 0.95;
  /// Fraction of non-null string values that must contain a separator for a
  /// column to be parsed as a formatted list.
  double list_detect_ratio = 0.5;
};

/// One textified cell: zero (null) or more (list) string tokens tagged with
/// the global attribute id they came from.
struct TextToken {
  uint32_t attr_id = 0;
  std::string token;
};

/// A textified table: per row, the emitted tokens.
struct TextifiedTable {
  std::string table_name;
  std::vector<std::vector<TextToken>> rows;
};

/// One column textified in a single pass (the batched analogue of
/// TransformCell): tokens are flattened in row order, with
/// `offsets[r] .. offsets[r+1]` delimiting row r's tokens. Rows are local to
/// the transformed range, so offsets always start at 0.
///
/// Tokens are views, not strings, so the serving path pays no heap
/// allocation per occurrence: each view points either into the source
/// column's values (which must outlive this struct) or into `storage`,
/// where derived tokens (bin labels, numeric renderings) are materialized
/// once. `storage` is a deque so growth never invalidates earlier views,
/// which also makes the struct safely movable; copying would dangle the
/// views, so it is move-only.
struct TextifiedColumn {
  std::vector<std::string_view> tokens;
  std::vector<size_t> offsets;  // size = rows + 1
  std::deque<std::string> storage;
  /// Dictionary encoding, produced for binned (numeric/datetime) columns
  /// whose tokens repeat heavily: `dict` lists tokens in first-appearance
  /// order and `dict_ids[i]` is the dict index of `tokens[i]`. Consumers can
  /// then resolve each dict entry once instead of hashing every occurrence.
  /// Both vectors are empty for non-dictionary columns.
  std::vector<std::string_view> dict;
  std::vector<uint32_t> dict_ids;

  TextifiedColumn() = default;
  TextifiedColumn(TextifiedColumn&&) = default;
  TextifiedColumn& operator=(TextifiedColumn&&) = default;
  TextifiedColumn(const TextifiedColumn&) = delete;
  TextifiedColumn& operator=(const TextifiedColumn&) = delete;

  size_t NumRows() const { return offsets.empty() ? 0 : offsets.size() - 1; }
};

/// The textification module. `Fit` scans a database, classifies every column
/// and fits histograms; `Transform` converts (possibly unseen) tables into
/// token streams using the fitted state, which implements the paper's
/// bin-quantization handling of unseen numeric test data.
class Textifier {
 public:
  explicit Textifier(TextifyOptions options = {}) : options_(options) {}

  /// Classifies each column of each table and fits numeric histograms.
  Status Fit(const Database& db);

  /// Textifies `table`. Columns are matched by (table name, column name); a
  /// table/column not seen at Fit time is an error.
  Result<TextifiedTable> Transform(const Table& table) const;

  /// Textifies a single cell of a fitted column. Used at inference time.
  Result<std::vector<std::string>> TransformCell(
      const std::string& table_name, const std::string& column_name,
      const Value& value) const;

  /// Textifies rows [row_begin, row_end) of `column` in one pass. The column
  /// state lookup, type dispatch, and numeric token prefix are resolved once
  /// per call instead of once per cell, and bin labels are materialized once
  /// per distinct bin; emitted tokens are byte-identical to repeated
  /// TransformCell calls. `row_end` == npos means column.size(). The result
  /// holds views into `column`, which must outlive it. This is the
  /// batched-featurization serving path.
  Result<TextifiedColumn> TransformColumn(
      const std::string& table_name, const Column& column, size_t row_begin = 0,
      size_t row_end = static_cast<size_t>(-1)) const;

  /// Total number of distinct attributes registered at Fit time.
  size_t NumAttributes() const { return attr_names_.size(); }
  /// Qualified "<table>.<column>" name for `attr_id`.
  const std::string& AttributeName(uint32_t attr_id) const {
    return attr_names_[attr_id];
  }
  /// Fitted class for a column; error if unknown.
  Result<ColumnClass> ClassOf(const std::string& table_name,
                              const std::string& column_name) const;

  const TextifyOptions& options() const { return options_; }

  /// Serializes the fitted state (options, column classes, histograms) into
  /// `out`. Columns are written in sorted-name order so the bytes are a pure
  /// function of the fitted state, not of hash-map iteration order.
  void Save(BufferWriter* out) const;

  /// Restores state written by Save, replacing this textifier. On error the
  /// textifier is left empty (unfitted), never partially loaded.
  Status Load(BufferReader* in);

 private:
  struct ColumnState {
    uint32_t attr_id = 0;
    ColumnClass cls = ColumnClass::kStringAtomic;
    Histogram histogram;      // fitted for kNumeric / kDatetime
    char list_separator = ','; // for kStringList
  };

  // Emits the tokens of `value` under `state` into `out`.
  void EmitTokens(const ColumnState& state, const Value& value,
                  std::vector<TextToken>* out) const;

  const ColumnState* FindState(const std::string& table_name,
                               const std::string& column_name) const;

  TextifyOptions options_;
  // Keyed by "<table>.<column>".
  std::unordered_map<std::string, ColumnState> columns_;
  std::vector<std::string> attr_names_;
};

}  // namespace leva

#endif  // LEVA_TEXT_TEXTIFIER_H_
