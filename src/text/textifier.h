#ifndef LEVA_TEXT_TEXTIFIER_H_
#define LEVA_TEXT_TEXTIFIER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "table/table.h"
#include "text/histogram.h"

namespace leva {

/// Textification strategy chosen per column (Section 4.1).
enum class ColumnClass {
  kKey,          ///< near-unique non-float column; values encoded directly
  kNumeric,      ///< binned via histogram; token = "<attr>#bin<k>"
  kDatetime,     ///< binned like numeric (epoch seconds)
  kStringAtomic, ///< value encoded directly
  kStringList,   ///< comma/semicolon-separated list; each element a token
};

std::string ColumnClassName(ColumnClass c);

/// Tunable textification parameters (Table 2).
struct TextifyOptions {
  /// Number of histogram bins for numeric/datetime columns.
  size_t bin_count = 50;
  /// When set, overrides the kurtosis-based histogram selection.
  bool force_histogram_type = false;
  HistogramType forced_type = HistogramType::kEquiWidth;
  /// Distinct/total ratio above which a non-float column is a Key.
  double key_distinct_ratio = 0.95;
  /// Fraction of non-null string values that must contain a separator for a
  /// column to be parsed as a formatted list.
  double list_detect_ratio = 0.5;
};

/// One textified cell: zero (null) or more (list) string tokens tagged with
/// the global attribute id they came from.
struct TextToken {
  uint32_t attr_id = 0;
  std::string token;
};

/// A textified table: per row, the emitted tokens.
struct TextifiedTable {
  std::string table_name;
  std::vector<std::vector<TextToken>> rows;
};

/// The textification module. `Fit` scans a database, classifies every column
/// and fits histograms; `Transform` converts (possibly unseen) tables into
/// token streams using the fitted state, which implements the paper's
/// bin-quantization handling of unseen numeric test data.
class Textifier {
 public:
  explicit Textifier(TextifyOptions options = {}) : options_(options) {}

  /// Classifies each column of each table and fits numeric histograms.
  Status Fit(const Database& db);

  /// Textifies `table`. Columns are matched by (table name, column name); a
  /// table/column not seen at Fit time is an error.
  Result<TextifiedTable> Transform(const Table& table) const;

  /// Textifies a single cell of a fitted column. Used at inference time.
  Result<std::vector<std::string>> TransformCell(
      const std::string& table_name, const std::string& column_name,
      const Value& value) const;

  /// Total number of distinct attributes registered at Fit time.
  size_t NumAttributes() const { return attr_names_.size(); }
  /// Qualified "<table>.<column>" name for `attr_id`.
  const std::string& AttributeName(uint32_t attr_id) const {
    return attr_names_[attr_id];
  }
  /// Fitted class for a column; error if unknown.
  Result<ColumnClass> ClassOf(const std::string& table_name,
                              const std::string& column_name) const;

  const TextifyOptions& options() const { return options_; }

 private:
  struct ColumnState {
    uint32_t attr_id = 0;
    ColumnClass cls = ColumnClass::kStringAtomic;
    Histogram histogram;      // fitted for kNumeric / kDatetime
    char list_separator = ','; // for kStringList
  };

  // Emits the tokens of `value` under `state` into `out`.
  void EmitTokens(const ColumnState& state, const Value& value,
                  std::vector<TextToken>* out) const;

  const ColumnState* FindState(const std::string& table_name,
                               const std::string& column_name) const;

  TextifyOptions options_;
  // Keyed by "<table>.<column>".
  std::unordered_map<std::string, ColumnState> columns_;
  std::vector<std::string> attr_names_;
};

}  // namespace leva

#endif  // LEVA_TEXT_TEXTIFIER_H_
