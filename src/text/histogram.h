#ifndef LEVA_TEXT_HISTOGRAM_H_
#define LEVA_TEXT_HISTOGRAM_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace leva {

/// Histogram flavor used to quantize a numeric column (Section 4.1).
enum class HistogramType {
  kEquiWidth,  ///< equal-width bins over [min, max]
  kEquiDepth,  ///< quantile bins; robust to heavy tails / outliers
};

/// Sample excess-free kurtosis (fourth standardized moment). A normal
/// distribution has kurtosis 3; Leva treats kurtosis above
/// `kHeavyTailKurtosis` as heavy-tailed and switches to equi-depth bins.
double Kurtosis(const std::vector<double>& values);

inline constexpr double kHeavyTailKurtosis = 3.0;

/// A fitted 1-D histogram that maps numeric values to bin ids in
/// [0, num_bins). Out-of-range values (e.g. unseen test data) clamp to the
/// first/last bin, which implements the paper's "binning quantization"
/// treatment of unseen numeric data.
class Histogram {
 public:
  /// Fits a histogram of (up to) `num_bins` bins over `values`. Duplicate
  /// quantiles in equi-depth mode collapse, so the effective bin count can be
  /// smaller. `values` may be unsorted; an empty input produces a single
  /// degenerate bin.
  static Histogram Fit(const std::vector<double>& values, size_t num_bins,
                       HistogramType type);

  /// Fits choosing the type from the data: equi-depth when kurtosis exceeds
  /// kHeavyTailKurtosis (heavy tail), equi-width otherwise.
  static Histogram FitAuto(const std::vector<double>& values, size_t num_bins);

  /// Bin id for `v`, clamped into range. Inline: the batched textify path
  /// calls this once per numeric cell, so the call overhead is measurable.
  size_t BinOf(double v) const {
    // First edge >= v; values above the last edge land in the last bin.
    const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
    return static_cast<size_t>(it - edges_.begin());
  }

  size_t num_bins() const { return edges_.size() + 1; }
  HistogramType type() const { return type_; }
  /// Interior bin edges (ascending); bin i covers (edges[i-1], edges[i]].
  const std::vector<double>& edges() const { return edges_; }

  /// Default: a single degenerate bin (everything maps to bin 0).
  Histogram() = default;

  /// Reconstructs a fitted histogram from its serialized state (`edges` must
  /// be ascending interior edges, exactly as edges() returned them).
  Histogram(HistogramType type, std::vector<double> edges)
      : type_(type), edges_(std::move(edges)) {}

 private:
  HistogramType type_ = HistogramType::kEquiWidth;
  std::vector<double> edges_;
};

}  // namespace leva

#endif  // LEVA_TEXT_HISTOGRAM_H_
