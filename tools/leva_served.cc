// leva_served: the batched embedding-serving daemon.
//
// Loads a fitted pipeline snapshot and serves FEATURIZE / PING / STATS /
// RELOAD / DRAIN over the framed TCP protocol (src/serve/protocol.h).
// SIGTERM or SIGINT triggers a graceful drain: admitted work finishes,
// responses flush, then the process exits 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/pipeline.h"
#include "serve/server.h"

namespace leva::serve {
namespace {

struct ServedOptions {
  std::string model;
  std::string port_file;  ///< write the bound port here (scripts + ephemeral)
  ServerOptions server;
  SnapshotLoadOptions load;
  size_t threads = 0;
  bool show_help = false;
};

void PrintUsage() {
  std::printf(
      "usage: leva_served --model SNAPSHOT [--host H] [--port P (0 = "
      "ephemeral)]\n"
      "                   [--port-file FILE (write the bound port)]\n"
      "                   [--max-batch-rows N (1 disables coalescing)]\n"
      "                   [--max-delay-us N] [--max-pending-rows N]\n"
      "                   [--drain-timeout-ms N] [--threads N (0 = all)]\n"
      "                   [--mmap] [--no-verify-pages]\n");
}

bool ParseArgs(int argc, char** argv, ServedOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      options->show_help = true;
      return true;
    } else if (arg == "--model") {
      const char* v = next("--model");
      if (v == nullptr) return false;
      options->model = v;
    } else if (arg == "--host") {
      const char* v = next("--host");
      if (v == nullptr) return false;
      options->server.host = v;
    } else if (arg == "--port") {
      const char* v = next("--port");
      if (v == nullptr) return false;
      options->server.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--port-file") {
      const char* v = next("--port-file");
      if (v == nullptr) return false;
      options->port_file = v;
    } else if (arg == "--max-batch-rows") {
      const char* v = next("--max-batch-rows");
      if (v == nullptr) return false;
      options->server.batcher.max_batch_rows =
          static_cast<size_t>(std::atoll(v));
    } else if (arg == "--max-delay-us") {
      const char* v = next("--max-delay-us");
      if (v == nullptr) return false;
      options->server.batcher.max_delay_us =
          static_cast<size_t>(std::atoll(v));
    } else if (arg == "--max-pending-rows") {
      const char* v = next("--max-pending-rows");
      if (v == nullptr) return false;
      options->server.batcher.max_pending_rows =
          static_cast<size_t>(std::atoll(v));
    } else if (arg == "--drain-timeout-ms") {
      const char* v = next("--drain-timeout-ms");
      if (v == nullptr) return false;
      options->server.drain_timeout_ms = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--threads") {
      const char* v = next("--threads");
      if (v == nullptr) return false;
      options->threads = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--mmap") {
      options->load.use_mmap = true;
    } else if (arg == "--no-verify-pages") {
      options->load.verify_pages = false;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return false;
    }
  }
  if (options->model.empty() && !options->show_help) {
    std::fprintf(stderr, "--model is required\n");
    return false;
  }
  return true;
}

Server* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

int Run(int argc, char** argv) {
  ServedOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 1;
  }
  if (options.show_help) {
    PrintUsage();
    return 0;
  }

  LevaConfig config;
  LevaPipeline pipeline(config);
  if (Status s = pipeline.LoadSnapshot(options.model, nullptr, options.load);
      !s.ok()) {
    std::fprintf(stderr, "load %s: %s\n", options.model.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  if (options.threads != 0) {
    pipeline.set_serving_options(options.threads, /*batch_size=*/0);
  }

  Server server(&pipeline, options.server);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }
  if (!options.port_file.empty()) {
    std::FILE* f = std::fopen(options.port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", options.port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", unsigned{server.port()});
    std::fclose(f);
  }

  g_server = &server;
  struct sigaction sa{};
  sa.sa_handler = HandleSignal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  server.Join();  // returns when the graceful drain completes
  g_server = nullptr;
  return 0;
}

}  // namespace
}  // namespace leva::serve

int main(int argc, char** argv) { return leva::serve::Run(argc, argv); }
