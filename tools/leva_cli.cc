// leva_cli: run the Leva pipeline over a set of CSV files from the command
// line and write the relational embedding as text.
//
//   leva_cli --table orders=orders.csv --table customers=customers.csv \
//            [--dim 100] [--method auto|mf|rw] [--bins 50] \
//            [--theta-range 0.5] [--theta-min 0.05] [--unweighted] \
//            [--threads N] [--featurize base_table target_column out.csv] \
//            [--save-model model.leva | --load-model model.leva] \
//            --output embedding.txt
//
// With --featurize, the base table is additionally encoded with the trained
// embedding and written as a plain numeric CSV (emb0..embN plus the target),
// ready for any external ML tool.
//
// --save-model writes the whole fitted pipeline as a checksummed snapshot;
// --load-model restores one instead of running Fit, so a serving process
// skips textification, graph construction, and embedding training entirely.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <memory>

#include "common/io.h"
#include "common/parallel.h"
#include "core/pipeline.h"
#include "core/update_log.h"
#include "ml/featurize.h"
#include "table/csv.h"

namespace leva {
namespace {

struct CliOptions {
  std::vector<std::pair<std::string, std::string>> tables;  // name -> path
  std::string output;
  std::string featurize_table;
  std::string featurize_target;
  std::string featurize_output;
  std::string save_model;
  std::string load_model;
  std::string reload_model;
  // Streaming updates: batches of new rows (name -> csv path) appended to
  // the live model via LevaPipeline::Update, optionally made durable first
  // through the write-ahead log at `wal_path`.
  std::vector<std::pair<std::string, std::string>> update_csvs;
  std::string wal_path;
  SnapshotLoadOptions load_options;
  LevaConfig config;
  // True when --quantize was given: --save-model then requantizes to the
  // requested tier even when the model came from a snapshot at another tier
  // (whose restored config would otherwise win).
  bool quantize_set = false;
  bool show_help = false;
};

void PrintUsage() {
  std::printf(
      "usage: leva_cli --table NAME=FILE.csv [--table ...] --output EMB.txt\n"
      "                [--dim N] [--method auto|mf|rw] [--bins N]\n"
      "                [--theta-range F] [--theta-min F] [--unweighted]\n"
      "                [--seed N] [--threads N (0 = all hardware threads)]\n"
      "                [--walk-engine auto|walker|batched (rw corpus engine; "
      "bit-identical output, perf only)]\n"
      "                [--featurize TABLE TARGET OUT.csv]\n"
      "                [--featurize-batch-size N (rows per serving batch; "
      "0 = whole table)]\n"
      "                [--quantize fp64|bf16|int8 (storage tier written by "
      "--save-model; serving dequantizes on the fly)]\n"
      "                [--save-model FILE (write fitted pipeline snapshot)]\n"
      "                [--load-model FILE (restore snapshot, skip Fit)]\n"
      "                [--mmap (serve bulk arrays zero-copy out of the "
      "mapped snapshot)]\n"
      "                [--no-verify-pages (defer per-page checksums; pair "
      "with --mmap for O(1) load)]\n"
      "                [--reload-model FILE (after the model is up, hot-swap "
      "to this snapshot and report swap latency)]\n"
      "                [--update-csv NAME=FILE.csv (append FILE's rows to "
      "fitted table NAME via the streaming-update path; repeatable)]\n"
      "                [--wal FILE (write-ahead log for --update-csv: "
      "batches are logged+fsynced before applying, and any records past the "
      "loaded snapshot's position are replayed first)]\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      options->show_help = true;
      return true;
    } else if (arg == "--table") {
      const char* v = next("--table");
      if (v == nullptr) return false;
      const std::string spec(v);
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--table expects NAME=FILE.csv, got '%s'\n", v);
        return false;
      }
      options->tables.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--output") {
      const char* v = next("--output");
      if (v == nullptr) return false;
      options->output = v;
    } else if (arg == "--dim") {
      const char* v = next("--dim");
      if (v == nullptr) return false;
      options->config.embedding_dim = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--bins") {
      const char* v = next("--bins");
      if (v == nullptr) return false;
      options->config.textify.bin_count = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--theta-range") {
      const char* v = next("--theta-range");
      if (v == nullptr) return false;
      options->config.graph.theta_range = std::atof(v);
    } else if (arg == "--theta-min") {
      const char* v = next("--theta-min");
      if (v == nullptr) return false;
      options->config.graph.theta_min = std::atof(v);
    } else if (arg == "--unweighted") {
      options->config.graph.weighted = false;
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr) return false;
      options->config.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--threads") {
      const char* v = next("--threads");
      if (v == nullptr) return false;
      char* end = nullptr;
      const long parsed = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || parsed < 0 || parsed > 4096) {
        std::fprintf(stderr,
                     "--threads expects an integer in [0, 4096], got '%s'\n",
                     v);
        return false;
      }
      options->config.threads = static_cast<size_t>(parsed);
    } else if (arg == "--method") {
      const char* v = next("--method");
      if (v == nullptr) return false;
      if (std::strcmp(v, "mf") == 0) {
        options->config.method = EmbeddingMethod::kMatrixFactorization;
      } else if (std::strcmp(v, "rw") == 0) {
        options->config.method = EmbeddingMethod::kRandomWalk;
      } else if (std::strcmp(v, "auto") == 0) {
        options->config.method = EmbeddingMethod::kAuto;
      } else {
        std::fprintf(stderr, "unknown method '%s'\n", v);
        return false;
      }
    } else if (arg == "--walk-engine") {
      const char* v = next("--walk-engine");
      if (v == nullptr) return false;
      if (std::strcmp(v, "auto") == 0) {
        options->config.walks.engine = WalkEngine::kAuto;
      } else if (std::strcmp(v, "walker") == 0) {
        options->config.walks.engine = WalkEngine::kWalker;
      } else if (std::strcmp(v, "batched") == 0) {
        options->config.walks.engine = WalkEngine::kBatched;
      } else {
        std::fprintf(stderr, "unknown walk engine '%s'\n", v);
        return false;
      }
    } else if (arg == "--featurize-batch-size") {
      const char* v = next("--featurize-batch-size");
      if (v == nullptr) return false;
      char* end = nullptr;
      const long parsed = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || parsed < 0) {
        std::fprintf(stderr,
                     "--featurize-batch-size expects a non-negative integer, "
                     "got '%s'\n",
                     v);
        return false;
      }
      options->config.featurize_batch_size = static_cast<size_t>(parsed);
    } else if (arg == "--quantize") {
      const char* v = next("--quantize");
      if (v == nullptr) return false;
      if (!ParseStorageTier(v, &options->config.quantize_tier)) {
        std::fprintf(stderr,
                     "--quantize expects fp64, bf16, or int8, got '%s'\n", v);
        return false;
      }
      options->quantize_set = true;
    } else if (arg == "--save-model") {
      const char* v = next("--save-model");
      if (v == nullptr) return false;
      options->save_model = v;
    } else if (arg == "--load-model") {
      const char* v = next("--load-model");
      if (v == nullptr) return false;
      options->load_model = v;
    } else if (arg == "--mmap") {
      options->load_options.use_mmap = true;
    } else if (arg == "--no-verify-pages") {
      options->load_options.verify_pages = false;
    } else if (arg == "--reload-model") {
      const char* v = next("--reload-model");
      if (v == nullptr) return false;
      options->reload_model = v;
    } else if (arg == "--update-csv") {
      const char* v = next("--update-csv");
      if (v == nullptr) return false;
      const std::string spec(v);
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--update-csv expects NAME=FILE.csv, got '%s'\n",
                     v);
        return false;
      }
      options->update_csvs.emplace_back(spec.substr(0, eq),
                                        spec.substr(eq + 1));
    } else if (arg == "--wal") {
      const char* v = next("--wal");
      if (v == nullptr) return false;
      options->wal_path = v;
    } else if (arg == "--featurize") {
      if (i + 3 >= argc) {
        std::fprintf(stderr, "--featurize expects TABLE TARGET OUT.csv\n");
        return false;
      }
      options->featurize_table = argv[++i];
      options->featurize_target = argv[++i];
      options->featurize_output = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int RunCli(const CliOptions& options) {
  // Run header: record parallelism so benchmark logs are self-describing.
  std::fprintf(stderr, "leva_cli: seed=%llu threads=%zu (resolved %zu)\n",
               static_cast<unsigned long long>(options.config.seed),
               options.config.threads, ResolveThreads(options.config.threads));
  Database db;
  for (const auto& [name, path] : options.tables) {
    auto table = ReadCsvFile(path, name);
    if (!table.ok()) {
      std::fprintf(stderr, "loading %s: %s\n", path.c_str(),
                   table.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded %-16s %zu rows x %zu columns\n", name.c_str(),
                 table->NumRows(), table->NumColumns());
    if (Status s = db.AddTable(std::move(*table)); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  LevaPipeline pipeline(options.config);
  if (!options.load_model.empty()) {
    const auto t0 = std::chrono::steady_clock::now();
    if (Status s = pipeline.LoadSnapshot(options.load_model, nullptr,
                                         options.load_options);
        !s.ok()) {
      std::fprintf(stderr, "load-model: %s\n", s.ToString().c_str());
      return 1;
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    std::fprintf(stderr,
                 "loaded snapshot %s in %.3fs (%zu vectors, dim %zu, "
                 "tier %s, %zu B/row, %s%s, rss %.1f MiB) — Fit skipped\n",
                 options.load_model.c_str(), elapsed.count(),
                 pipeline.embedding().size(), pipeline.embedding().dim(),
                 StorageTierName(pipeline.embedding().tier()),
                 pipeline.embedding().bytes_per_row(),
                 pipeline.uses_mmap() ? "mmap" : "heap",
                 options.load_options.verify_pages ? "" : " lazy",
                 CurrentRssBytes() / (1024.0 * 1024.0));
    // The snapshot restores the fit-time config; serving-only knobs on this
    // command line still win.
    pipeline.set_serving_options(options.config.threads,
                                 options.config.featurize_batch_size);
  } else {
    const auto t0 = std::chrono::steady_clock::now();
    if (Status s = pipeline.Fit(db); !s.ok()) {
      std::fprintf(stderr, "pipeline: %s\n", s.ToString().c_str());
      return 1;
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    std::fprintf(stderr, "fit in %.3fs\n", elapsed.count());
    for (const auto& [stage, secs] : pipeline.profile().stages()) {
      const std::string& note = pipeline.profile().annotation(stage);
      std::fprintf(stderr, "  %s: %.3fs%s%s\n", stage.c_str(), secs,
                   note.empty() ? "" : " ", note.c_str());
    }
  }
  if (!options.wal_path.empty() || !options.update_csvs.empty()) {
    // Recover-then-update: any records a previous process acknowledged into
    // the WAL but never captured in a snapshot are replayed first, so the
    // new batches append after a consistent prefix.
    std::unique_ptr<UpdateLog> wal;
    if (!options.wal_path.empty()) {
      if (Env::Default()->FileExists(options.wal_path)) {
        auto replayed = pipeline.RecoverFromLog(options.wal_path);
        if (!replayed.ok()) {
          std::fprintf(stderr, "wal replay: %s\n",
                       replayed.status().ToString().c_str());
          return 1;
        }
        if (*replayed > 0) {
          std::fprintf(stderr, "replayed %zu update record(s) from %s\n",
                       *replayed, options.wal_path.c_str());
        }
      }
      auto opened = UpdateLog::Open(options.wal_path);
      if (!opened.ok()) {
        std::fprintf(stderr, "wal open: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      wal = std::move(*opened);
    }
    for (const auto& [name, path] : options.update_csvs) {
      auto table = ReadCsvFile(path, name);
      if (!table.ok()) {
        std::fprintf(stderr, "loading %s: %s\n", path.c_str(),
                     table.status().ToString().c_str());
        return 1;
      }
      const auto t0 = std::chrono::steady_clock::now();
      auto result = pipeline.Update(*table, wal.get());
      if (!result.ok()) {
        std::fprintf(stderr, "update %s: %s\n", name.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - t0;
      std::fprintf(stderr,
                   "updated %s: %zu row(s), +%zu value node(s), +%zu "
                   "edge(s), %zu vector(s) refreshed in %.3fs%s%s "
                   "(wal offset %llu)\n",
                   name.c_str(), result->rows_applied,
                   result->new_value_nodes, result->new_edges,
                   result->refreshed_vectors, elapsed.count(),
                   result->compacted ? ", compacted" : "",
                   result->full_refit ? ", full refit" : "",
                   static_cast<unsigned long long>(result->wal_offset));
    }
  }
  if (!options.save_model.empty()) {
    // --quantize forces the tier explicitly so a model restored from a
    // snapshot at another tier still gets re-encoded as requested.
    const StorageTier save_tier = options.config.quantize_tier;
    const auto t0 = std::chrono::steady_clock::now();
    Status s = options.quantize_set
                   ? pipeline.SaveSnapshot(options.save_model, save_tier)
                   : pipeline.SaveSnapshot(options.save_model);
    if (!s.ok()) {
      std::fprintf(stderr, "save-model: %s\n", s.ToString().c_str());
      return 1;
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    std::fprintf(stderr, "saved snapshot to %s in %.3fs (tier %s)\n",
                 options.save_model.c_str(), elapsed.count(),
                 options.quantize_set
                     ? StorageTierName(save_tier)
                     : StorageTierName(pipeline.embedding().tier()));
  }
  if (!options.reload_model.empty()) {
    // Hot swap: the serving model is replaced atomically; calls already in
    // flight would finish on the model they pinned. Here it demonstrates the
    // swap path and reports its latency and memory cost.
    // An operator-driven reload must not silently change serving precision:
    // require the incoming snapshot to match the tier already being served.
    SnapshotLoadOptions reload_options = options.load_options;
    reload_options.require_same_tier = true;
    const auto t0 = std::chrono::steady_clock::now();
    if (Status s = pipeline.ReloadSnapshot(options.reload_model, nullptr,
                                           reload_options);
        !s.ok()) {
      std::fprintf(stderr, "reload-model: %s\n", s.ToString().c_str());
      return 1;
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    std::fprintf(stderr,
                 "hot-swapped to %s in %.3fs (%zu vectors, dim %zu, "
                 "tier %s, %zu B/row, %s, rss %.1f MiB)\n",
                 options.reload_model.c_str(), elapsed.count(),
                 pipeline.embedding().size(), pipeline.embedding().dim(),
                 StorageTierName(pipeline.embedding().tier()),
                 pipeline.embedding().bytes_per_row(),
                 pipeline.uses_mmap() ? "mmap" : "heap",
                 CurrentRssBytes() / (1024.0 * 1024.0));
  }
  const GraphStats& stats = pipeline.graph().stats();
  std::fprintf(stderr,
               "graph: %zu row nodes, %zu value nodes, %zu edges; "
               "refinement removed %zu missing-token(s); method=%s\n",
               stats.row_nodes, stats.value_nodes, stats.edges,
               stats.tokens_removed_missing,
               pipeline.chosen_method() == EmbeddingMethod::kMatrixFactorization
                   ? "MF"
                   : "RW");

  if (!options.output.empty()) {
    std::ofstream out(options.output);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", options.output.c_str());
      return 1;
    }
    out << pipeline.embedding().ToText();
    std::fprintf(stderr, "wrote %zu vectors (dim %zu) to %s\n",
                 pipeline.embedding().size(), pipeline.embedding().dim(),
                 options.output.c_str());
  }

  if (!options.featurize_table.empty()) {
    const Table* base = db.FindTable(options.featurize_table);
    if (base == nullptr) {
      std::fprintf(stderr, "no table '%s' to featurize\n",
                   options.featurize_table.c_str());
      return 1;
    }
    const Column* target = base->FindColumn(options.featurize_target);
    if (target == nullptr) {
      std::fprintf(stderr, "no column '%s' in '%s'\n",
                   options.featurize_target.c_str(),
                   options.featurize_table.c_str());
      return 1;
    }
    TargetEncoder encoder;
    // Try classification first; numeric targets fall back to regression.
    bool classification = true;
    if (!encoder.Fit(*target, true).ok()) {
      classification = false;
      if (Status s = encoder.Fit(*target, false); !s.ok()) {
        std::fprintf(stderr, "target: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    auto features = pipeline.Featurize(*base, options.featurize_target,
                                       encoder, /*rows_in_graph=*/true);
    if (!features.ok()) {
      std::fprintf(stderr, "featurize: %s\n",
                   features.status().ToString().c_str());
      return 1;
    }
    Table out_table(options.featurize_table + "_features");
    for (size_t j = 0; j < features->NumFeatures(); ++j) {
      Column c;
      c.name = features->feature_names[j];
      c.type = DataType::kDouble;
      for (size_t r = 0; r < features->NumRows(); ++r) {
        c.values.push_back(Value(features->x(r, j)));
      }
      (void)out_table.AddColumn(std::move(c));
    }
    Column y;
    y.name = options.featurize_target;
    y.type = DataType::kDouble;
    for (const double v : features->y) y.values.push_back(Value(v));
    (void)out_table.AddColumn(std::move(y));
    if (Status s = WriteCsvFile(out_table, options.featurize_output); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    double featurize_secs = 0.0;
    for (const auto& [stage, secs] : pipeline.profile().stages()) {
      if (stage == "featurize") featurize_secs = secs;
    }
    const FeaturizeStats& fs = pipeline.featurize_stats();
    std::fprintf(stderr,
                 "featurize: %zu rows in %.3fs (%zu threads, %zu batch(es), "
                 "%zu tokens, %zu distinct -> %zu store lookups)\n",
                 fs.rows, featurize_secs, pipeline.profile().threads(),
                 fs.batches, fs.token_occurrences, fs.distinct_tokens,
                 fs.store_lookups);
    std::fprintf(stderr, "wrote featurized %s (%s) to %s\n",
                 options.featurize_table.c_str(),
                 classification ? "classification" : "regression",
                 options.featurize_output.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace leva

int main(int argc, char** argv) {
  leva::CliOptions options;
  if (!leva::ParseArgs(argc, argv, &options)) {
    leva::PrintUsage();
    return 2;
  }
  // --load-model needs no input tables unless --featurize wants one.
  if (options.show_help ||
      (options.tables.empty() && options.load_model.empty())) {
    leva::PrintUsage();
    return options.show_help ? 0 : 2;
  }
  return leva::RunCli(options);
}
