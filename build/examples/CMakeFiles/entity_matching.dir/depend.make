# Empty dependencies file for entity_matching.
# This may be replaced when dependencies are built.
