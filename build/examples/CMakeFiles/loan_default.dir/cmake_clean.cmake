file(REMOVE_RECURSE
  "CMakeFiles/loan_default.dir/loan_default.cpp.o"
  "CMakeFiles/loan_default.dir/loan_default.cpp.o.d"
  "loan_default"
  "loan_default.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loan_default.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
