# Empty compiler generated dependencies file for loan_default.
# This may be replaced when dependencies are built.
