file(REMOVE_RECURSE
  "CMakeFiles/molecule_regression.dir/molecule_regression.cpp.o"
  "CMakeFiles/molecule_regression.dir/molecule_regression.cpp.o.d"
  "molecule_regression"
  "molecule_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molecule_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
