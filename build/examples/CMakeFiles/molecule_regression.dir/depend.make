# Empty dependencies file for molecule_regression.
# This may be replaced when dependencies are built.
