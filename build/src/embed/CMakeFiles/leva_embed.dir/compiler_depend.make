# Empty compiler generated dependencies file for leva_embed.
# This may be replaced when dependencies are built.
