file(REMOVE_RECURSE
  "libleva_embed.a"
)
