file(REMOVE_RECURSE
  "CMakeFiles/leva_embed.dir/embedding.cc.o"
  "CMakeFiles/leva_embed.dir/embedding.cc.o.d"
  "CMakeFiles/leva_embed.dir/line.cc.o"
  "CMakeFiles/leva_embed.dir/line.cc.o.d"
  "CMakeFiles/leva_embed.dir/mf.cc.o"
  "CMakeFiles/leva_embed.dir/mf.cc.o.d"
  "CMakeFiles/leva_embed.dir/walks.cc.o"
  "CMakeFiles/leva_embed.dir/walks.cc.o.d"
  "CMakeFiles/leva_embed.dir/word2vec.cc.o"
  "CMakeFiles/leva_embed.dir/word2vec.cc.o.d"
  "libleva_embed.a"
  "libleva_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leva_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
