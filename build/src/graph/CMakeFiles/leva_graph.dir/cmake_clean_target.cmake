file(REMOVE_RECURSE
  "libleva_graph.a"
)
