
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/alias.cc" "src/graph/CMakeFiles/leva_graph.dir/alias.cc.o" "gcc" "src/graph/CMakeFiles/leva_graph.dir/alias.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/leva_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/leva_graph.dir/graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/leva_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/leva_text.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/leva_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
