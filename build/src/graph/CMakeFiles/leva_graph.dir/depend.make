# Empty dependencies file for leva_graph.
# This may be replaced when dependencies are built.
