file(REMOVE_RECURSE
  "CMakeFiles/leva_graph.dir/alias.cc.o"
  "CMakeFiles/leva_graph.dir/alias.cc.o.d"
  "CMakeFiles/leva_graph.dir/graph.cc.o"
  "CMakeFiles/leva_graph.dir/graph.cc.o.d"
  "libleva_graph.a"
  "libleva_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leva_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
