file(REMOVE_RECURSE
  "CMakeFiles/leva_ml.dir/dataset.cc.o"
  "CMakeFiles/leva_ml.dir/dataset.cc.o.d"
  "CMakeFiles/leva_ml.dir/featurize.cc.o"
  "CMakeFiles/leva_ml.dir/featurize.cc.o.d"
  "CMakeFiles/leva_ml.dir/gridsearch.cc.o"
  "CMakeFiles/leva_ml.dir/gridsearch.cc.o.d"
  "CMakeFiles/leva_ml.dir/linear.cc.o"
  "CMakeFiles/leva_ml.dir/linear.cc.o.d"
  "CMakeFiles/leva_ml.dir/metrics.cc.o"
  "CMakeFiles/leva_ml.dir/metrics.cc.o.d"
  "CMakeFiles/leva_ml.dir/mlp.cc.o"
  "CMakeFiles/leva_ml.dir/mlp.cc.o.d"
  "CMakeFiles/leva_ml.dir/tree.cc.o"
  "CMakeFiles/leva_ml.dir/tree.cc.o.d"
  "libleva_ml.a"
  "libleva_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leva_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
