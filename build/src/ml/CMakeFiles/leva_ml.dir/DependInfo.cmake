
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/leva_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/leva_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/featurize.cc" "src/ml/CMakeFiles/leva_ml.dir/featurize.cc.o" "gcc" "src/ml/CMakeFiles/leva_ml.dir/featurize.cc.o.d"
  "/root/repo/src/ml/gridsearch.cc" "src/ml/CMakeFiles/leva_ml.dir/gridsearch.cc.o" "gcc" "src/ml/CMakeFiles/leva_ml.dir/gridsearch.cc.o.d"
  "/root/repo/src/ml/linear.cc" "src/ml/CMakeFiles/leva_ml.dir/linear.cc.o" "gcc" "src/ml/CMakeFiles/leva_ml.dir/linear.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/leva_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/leva_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/leva_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/leva_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/tree.cc" "src/ml/CMakeFiles/leva_ml.dir/tree.cc.o" "gcc" "src/ml/CMakeFiles/leva_ml.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/leva_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/leva_la.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/leva_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
