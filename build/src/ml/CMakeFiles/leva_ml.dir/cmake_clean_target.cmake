file(REMOVE_RECURSE
  "libleva_ml.a"
)
