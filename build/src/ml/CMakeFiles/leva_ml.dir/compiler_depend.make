# Empty compiler generated dependencies file for leva_ml.
# This may be replaced when dependencies are built.
