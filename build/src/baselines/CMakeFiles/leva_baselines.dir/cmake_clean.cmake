file(REMOVE_RECURSE
  "CMakeFiles/leva_baselines.dir/corpus_models.cc.o"
  "CMakeFiles/leva_baselines.dir/corpus_models.cc.o.d"
  "CMakeFiles/leva_baselines.dir/discovery.cc.o"
  "CMakeFiles/leva_baselines.dir/discovery.cc.o.d"
  "CMakeFiles/leva_baselines.dir/embedding_model.cc.o"
  "CMakeFiles/leva_baselines.dir/embedding_model.cc.o.d"
  "CMakeFiles/leva_baselines.dir/experiment.cc.o"
  "CMakeFiles/leva_baselines.dir/experiment.cc.o.d"
  "CMakeFiles/leva_baselines.dir/graph_models.cc.o"
  "CMakeFiles/leva_baselines.dir/graph_models.cc.o.d"
  "CMakeFiles/leva_baselines.dir/tabular.cc.o"
  "CMakeFiles/leva_baselines.dir/tabular.cc.o.d"
  "libleva_baselines.a"
  "libleva_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leva_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
