# Empty compiler generated dependencies file for leva_baselines.
# This may be replaced when dependencies are built.
