file(REMOVE_RECURSE
  "libleva_baselines.a"
)
