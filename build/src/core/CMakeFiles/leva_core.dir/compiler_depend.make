# Empty compiler generated dependencies file for leva_core.
# This may be replaced when dependencies are built.
