file(REMOVE_RECURSE
  "libleva_core.a"
)
