file(REMOVE_RECURSE
  "CMakeFiles/leva_core.dir/pipeline.cc.o"
  "CMakeFiles/leva_core.dir/pipeline.cc.o.d"
  "libleva_core.a"
  "libleva_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leva_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
