# Empty compiler generated dependencies file for leva_er.
# This may be replaced when dependencies are built.
