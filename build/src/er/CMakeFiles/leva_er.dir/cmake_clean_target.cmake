file(REMOVE_RECURSE
  "libleva_er.a"
)
