file(REMOVE_RECURSE
  "CMakeFiles/leva_er.dir/entity_resolution.cc.o"
  "CMakeFiles/leva_er.dir/entity_resolution.cc.o.d"
  "libleva_er.a"
  "libleva_er.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leva_er.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
