# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("table")
subdirs("text")
subdirs("graph")
subdirs("la")
subdirs("embed")
subdirs("ml")
subdirs("core")
subdirs("datagen")
subdirs("baselines")
subdirs("er")
