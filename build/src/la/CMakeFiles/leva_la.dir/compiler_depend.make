# Empty compiler generated dependencies file for leva_la.
# This may be replaced when dependencies are built.
