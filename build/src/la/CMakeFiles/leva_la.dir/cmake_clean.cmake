file(REMOVE_RECURSE
  "CMakeFiles/leva_la.dir/decomp.cc.o"
  "CMakeFiles/leva_la.dir/decomp.cc.o.d"
  "CMakeFiles/leva_la.dir/matrix.cc.o"
  "CMakeFiles/leva_la.dir/matrix.cc.o.d"
  "CMakeFiles/leva_la.dir/sparse.cc.o"
  "CMakeFiles/leva_la.dir/sparse.cc.o.d"
  "libleva_la.a"
  "libleva_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leva_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
