file(REMOVE_RECURSE
  "libleva_la.a"
)
