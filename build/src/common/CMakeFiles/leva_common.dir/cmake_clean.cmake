file(REMOVE_RECURSE
  "CMakeFiles/leva_common.dir/logging.cc.o"
  "CMakeFiles/leva_common.dir/logging.cc.o.d"
  "CMakeFiles/leva_common.dir/parallel.cc.o"
  "CMakeFiles/leva_common.dir/parallel.cc.o.d"
  "CMakeFiles/leva_common.dir/status.cc.o"
  "CMakeFiles/leva_common.dir/status.cc.o.d"
  "CMakeFiles/leva_common.dir/string_util.cc.o"
  "CMakeFiles/leva_common.dir/string_util.cc.o.d"
  "libleva_common.a"
  "libleva_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leva_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
