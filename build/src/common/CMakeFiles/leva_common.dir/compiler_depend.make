# Empty compiler generated dependencies file for leva_common.
# This may be replaced when dependencies are built.
