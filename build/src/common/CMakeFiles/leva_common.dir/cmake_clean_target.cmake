file(REMOVE_RECURSE
  "libleva_common.a"
)
