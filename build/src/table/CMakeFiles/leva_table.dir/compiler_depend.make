# Empty compiler generated dependencies file for leva_table.
# This may be replaced when dependencies are built.
