file(REMOVE_RECURSE
  "libleva_table.a"
)
