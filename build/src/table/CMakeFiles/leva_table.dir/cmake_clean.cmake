file(REMOVE_RECURSE
  "CMakeFiles/leva_table.dir/csv.cc.o"
  "CMakeFiles/leva_table.dir/csv.cc.o.d"
  "CMakeFiles/leva_table.dir/join.cc.o"
  "CMakeFiles/leva_table.dir/join.cc.o.d"
  "CMakeFiles/leva_table.dir/table.cc.o"
  "CMakeFiles/leva_table.dir/table.cc.o.d"
  "CMakeFiles/leva_table.dir/value.cc.o"
  "CMakeFiles/leva_table.dir/value.cc.o.d"
  "libleva_table.a"
  "libleva_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leva_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
