file(REMOVE_RECURSE
  "libleva_datagen.a"
)
