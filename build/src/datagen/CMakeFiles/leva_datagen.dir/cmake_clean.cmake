file(REMOVE_RECURSE
  "CMakeFiles/leva_datagen.dir/datasets.cc.o"
  "CMakeFiles/leva_datagen.dir/datasets.cc.o.d"
  "CMakeFiles/leva_datagen.dir/er_data.cc.o"
  "CMakeFiles/leva_datagen.dir/er_data.cc.o.d"
  "CMakeFiles/leva_datagen.dir/synthetic.cc.o"
  "CMakeFiles/leva_datagen.dir/synthetic.cc.o.d"
  "libleva_datagen.a"
  "libleva_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leva_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
