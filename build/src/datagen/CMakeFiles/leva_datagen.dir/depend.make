# Empty dependencies file for leva_datagen.
# This may be replaced when dependencies are built.
