
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/datasets.cc" "src/datagen/CMakeFiles/leva_datagen.dir/datasets.cc.o" "gcc" "src/datagen/CMakeFiles/leva_datagen.dir/datasets.cc.o.d"
  "/root/repo/src/datagen/er_data.cc" "src/datagen/CMakeFiles/leva_datagen.dir/er_data.cc.o" "gcc" "src/datagen/CMakeFiles/leva_datagen.dir/er_data.cc.o.d"
  "/root/repo/src/datagen/synthetic.cc" "src/datagen/CMakeFiles/leva_datagen.dir/synthetic.cc.o" "gcc" "src/datagen/CMakeFiles/leva_datagen.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/leva_common.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/leva_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
