file(REMOVE_RECURSE
  "libleva_text.a"
)
