file(REMOVE_RECURSE
  "CMakeFiles/leva_text.dir/histogram.cc.o"
  "CMakeFiles/leva_text.dir/histogram.cc.o.d"
  "CMakeFiles/leva_text.dir/textifier.cc.o"
  "CMakeFiles/leva_text.dir/textifier.cc.o.d"
  "libleva_text.a"
  "libleva_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leva_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
