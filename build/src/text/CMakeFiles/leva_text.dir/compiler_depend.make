# Empty compiler generated dependencies file for leva_text.
# This may be replaced when dependencies are built.
