file(REMOVE_RECURSE
  "CMakeFiles/table7_pca.dir/table7_pca.cc.o"
  "CMakeFiles/table7_pca.dir/table7_pca.cc.o.d"
  "table7_pca"
  "table7_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
