# Empty compiler generated dependencies file for table7_pca.
# This may be replaced when dependencies are built.
