# Empty dependencies file for table8_entity_resolution.
# This may be replaced when dependencies are built.
