file(REMOVE_RECURSE
  "CMakeFiles/table8_entity_resolution.dir/table8_entity_resolution.cc.o"
  "CMakeFiles/table8_entity_resolution.dir/table8_entity_resolution.cc.o.d"
  "table8_entity_resolution"
  "table8_entity_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_entity_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
