file(REMOVE_RECURSE
  "CMakeFiles/ablation_value_nodes.dir/ablation_value_nodes.cc.o"
  "CMakeFiles/ablation_value_nodes.dir/ablation_value_nodes.cc.o.d"
  "ablation_value_nodes"
  "ablation_value_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_value_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
