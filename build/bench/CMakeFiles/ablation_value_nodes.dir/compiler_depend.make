# Empty compiler generated dependencies file for ablation_value_nodes.
# This may be replaced when dependencies are built.
