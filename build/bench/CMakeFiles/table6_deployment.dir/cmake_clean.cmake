file(REMOVE_RECURSE
  "CMakeFiles/table6_deployment.dir/table6_deployment.cc.o"
  "CMakeFiles/table6_deployment.dir/table6_deployment.cc.o.d"
  "table6_deployment"
  "table6_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
