# Empty dependencies file for table6_deployment.
# This may be replaced when dependencies are built.
