# Empty compiler generated dependencies file for table3_clustering.
# This may be replaced when dependencies are built.
