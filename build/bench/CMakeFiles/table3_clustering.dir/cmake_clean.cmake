file(REMOVE_RECURSE
  "CMakeFiles/table3_clustering.dir/table3_clustering.cc.o"
  "CMakeFiles/table3_clustering.dir/table3_clustering.cc.o.d"
  "table3_clustering"
  "table3_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
