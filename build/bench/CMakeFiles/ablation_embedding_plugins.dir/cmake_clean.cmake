file(REMOVE_RECURSE
  "CMakeFiles/ablation_embedding_plugins.dir/ablation_embedding_plugins.cc.o"
  "CMakeFiles/ablation_embedding_plugins.dir/ablation_embedding_plugins.cc.o.d"
  "ablation_embedding_plugins"
  "ablation_embedding_plugins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_embedding_plugins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
