# Empty compiler generated dependencies file for ablation_embedding_plugins.
# This may be replaced when dependencies are built.
