file(REMOVE_RECURSE
  "CMakeFiles/fig7c_weights_restarts.dir/fig7c_weights_restarts.cc.o"
  "CMakeFiles/fig7c_weights_restarts.dir/fig7c_weights_restarts.cc.o.d"
  "fig7c_weights_restarts"
  "fig7c_weights_restarts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7c_weights_restarts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
