# Empty compiler generated dependencies file for fig7c_weights_restarts.
# This may be replaced when dependencies are built.
