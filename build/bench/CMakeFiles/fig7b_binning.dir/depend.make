# Empty dependencies file for fig7b_binning.
# This may be replaced when dependencies are built.
