file(REMOVE_RECURSE
  "CMakeFiles/fig7b_binning.dir/fig7b_binning.cc.o"
  "CMakeFiles/fig7b_binning.dir/fig7b_binning.cc.o.d"
  "fig7b_binning"
  "fig7b_binning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
