# Empty dependencies file for fig5_regression.
# This may be replaced when dependencies are built.
