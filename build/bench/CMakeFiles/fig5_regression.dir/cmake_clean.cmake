file(REMOVE_RECURSE
  "CMakeFiles/fig5_regression.dir/fig5_regression.cc.o"
  "CMakeFiles/fig5_regression.dir/fig5_regression.cc.o.d"
  "fig5_regression"
  "fig5_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
