# Empty dependencies file for fig6bc_profile.
# This may be replaced when dependencies are built.
