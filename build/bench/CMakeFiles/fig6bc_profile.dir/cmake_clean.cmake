file(REMOVE_RECURSE
  "CMakeFiles/fig6bc_profile.dir/fig6bc_profile.cc.o"
  "CMakeFiles/fig6bc_profile.dir/fig6bc_profile.cc.o.d"
  "fig6bc_profile"
  "fig6bc_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6bc_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
