# Empty compiler generated dependencies file for fig6a_finetune.
# This may be replaced when dependencies are built.
