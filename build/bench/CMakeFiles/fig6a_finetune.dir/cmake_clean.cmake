file(REMOVE_RECURSE
  "CMakeFiles/fig6a_finetune.dir/fig6a_finetune.cc.o"
  "CMakeFiles/fig6a_finetune.dir/fig6a_finetune.cc.o.d"
  "fig6a_finetune"
  "fig6a_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
