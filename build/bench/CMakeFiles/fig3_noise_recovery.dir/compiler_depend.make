# Empty compiler generated dependencies file for fig3_noise_recovery.
# This may be replaced when dependencies are built.
