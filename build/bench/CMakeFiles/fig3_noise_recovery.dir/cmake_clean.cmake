file(REMOVE_RECURSE
  "CMakeFiles/fig3_noise_recovery.dir/fig3_noise_recovery.cc.o"
  "CMakeFiles/fig3_noise_recovery.dir/fig3_noise_recovery.cc.o.d"
  "fig3_noise_recovery"
  "fig3_noise_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_noise_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
