file(REMOVE_RECURSE
  "CMakeFiles/table5_embedding_methods.dir/table5_embedding_methods.cc.o"
  "CMakeFiles/table5_embedding_methods.dir/table5_embedding_methods.cc.o.d"
  "table5_embedding_methods"
  "table5_embedding_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_embedding_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
