# Empty dependencies file for table5_embedding_methods.
# This may be replaced when dependencies are built.
