file(REMOVE_RECURSE
  "CMakeFiles/fig4_classification.dir/fig4_classification.cc.o"
  "CMakeFiles/fig4_classification.dir/fig4_classification.cc.o.d"
  "fig4_classification"
  "fig4_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
