# Empty compiler generated dependencies file for leva_cli.
# This may be replaced when dependencies are built.
