file(REMOVE_RECURSE
  "CMakeFiles/leva_cli.dir/leva_cli.cc.o"
  "CMakeFiles/leva_cli.dir/leva_cli.cc.o.d"
  "leva_cli"
  "leva_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leva_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
