# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/embed_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/er_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
