
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel_test.cc" "tests/CMakeFiles/parallel_test.dir/parallel_test.cc.o" "gcc" "tests/CMakeFiles/parallel_test.dir/parallel_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/er/CMakeFiles/leva_er.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/leva_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/leva_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/leva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/leva_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/leva_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/leva_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/leva_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/leva_table.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/leva_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/leva_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
