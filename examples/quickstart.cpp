// Quickstart: build a tiny relational database in memory, run the Leva
// pipeline, and train a classifier on the resulting embedding — no keys or
// join paths ever provided.
//
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
#include <cstdio>

#include "core/pipeline.h"
#include "datagen/synthetic.h"
#include "ml/featurize.h"
#include "ml/metrics.h"
#include "ml/tree.h"

using namespace leva;

int main() {
  // 1. A database: a base table with the target plus two dimension tables
  //    reachable only through (undeclared) foreign keys.
  SyntheticConfig config;
  config.base_rows = 600;
  config.classification = true;
  config.num_classes = 2;
  config.dims = {
      {.name = "customers", .rows = 80, .predictive_numeric = 2,
       .predictive_categorical = 1, .noise_numeric = 1,
       .noise_categorical = 1, .categories = 8, .parent = ""},
      {.name = "regions", .rows = 20, .predictive_numeric = 1,
       .predictive_categorical = 1, .noise_numeric = 0,
       .noise_categorical = 1, .categories = 6, .parent = "customers"},
  };
  config.seed = 7;
  auto data = GenerateSynthetic(config);
  if (!data.ok()) {
    std::fprintf(stderr, "generate: %s\n", data.status().ToString().c_str());
    return 1;
  }

  // 2. Fit Leva. The pipeline textifies every table, builds and refines the
  //    row/value graph, and embeds it (MF or RW chosen by memory budget).
  //    Drop the target column first: embeddings are unsupervised.
  Database features_db;
  for (const Table& t : data->db.tables()) {
    Table copy = t;
    if (t.name() == "base") {
      (void)copy.DropColumn(*copy.ColumnIndex("target"));
    }
    (void)features_db.AddTable(std::move(copy));
  }

  LevaConfig leva_config;
  leva_config.embedding_dim = 64;
  LevaPipeline pipeline(leva_config);
  if (Status s = pipeline.Fit(features_db); !s.ok()) {
    std::fprintf(stderr, "fit: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Fitted: %zu graph nodes, %zu edges, method = %s\n",
              pipeline.graph().NumNodes(), pipeline.graph().NumEdges(),
              pipeline.chosen_method() == EmbeddingMethod::kMatrixFactorization
                  ? "matrix factorization"
                  : "random walks");

  // 3. Featurize the base table with the embedding and split train/test.
  const Table* base = data->db.FindTable("base");
  TargetEncoder encoder;
  (void)encoder.Fit(*base->FindColumn("target"), /*classification=*/true);
  auto featurized = pipeline.Featurize(*base, "target", encoder,
                                       /*rows_in_graph=*/true);
  if (!featurized.ok()) {
    std::fprintf(stderr, "featurize: %s\n",
                 featurized.status().ToString().c_str());
    return 1;
  }
  Rng rng(1);
  TrainTestSplit split = SplitTrainTest(*featurized, 0.25, &rng);
  StandardizeFeatures(&split.train, &split.test);

  // 4. Train any off-the-shelf model on the embedding features.
  ForestOptions forest_options;
  forest_options.num_trees = 50;
  forest_options.tree.num_classes = encoder.num_classes();
  RandomForest forest(forest_options);
  (void)forest.Fit(split.train.x, split.train.y, &rng);
  const double accuracy =
      Accuracy(split.test.y, forest.Predict(split.test.x));

  std::printf("Test accuracy with Leva features: %.3f\n", accuracy);
  std::printf("(no keys, no join paths, no feature engineering)\n");
  return 0;
}
