// Entity resolution scenario (Section 6.7): match dirty product records
// across two catalogs using Leva's relational embedding, a task the system
// was not designed for but handles through the same graph construction.
#include <cstdio>

#include "baselines/leva_model.h"
#include "datagen/er_data.h"
#include "er/entity_resolution.h"

using namespace leva;

int main() {
  ErConfig config;
  config.name = "catalog_match";
  config.entities = 300;
  config.perturbation = 0.25;  // typos, dropped words, reformatted brands
  config.seed = 13;
  auto dataset = GenerateErDataset(config);
  if (!dataset.ok()) return 1;

  std::printf("Catalog A: %zu rows, Catalog B: %zu rows, %zu labeled pairs\n",
              dataset->table_a.NumRows(), dataset->table_b.NumRows(),
              dataset->pairs.size());
  std::printf("Example A record: \"%s\" / %s\n",
              dataset->table_a.at(0, 0).as_string().c_str(),
              dataset->table_a.at(0, 1).as_string().c_str());

  auto db = ErDatabase(*dataset);
  if (!db.ok()) return 1;

  LevaConfig leva_config;
  leva_config.method = EmbeddingMethod::kMatrixFactorization;
  leva_config.embedding_dim = 48;
  leva_config.featurization = Featurization::kRowOnly;
  LevaModel model(leva_config);
  if (Status s = model.Fit(*db); !s.ok()) {
    std::fprintf(stderr, "fit: %s\n", s.ToString().c_str());
    return 1;
  }

  auto result = EvaluateEntityResolution(model, *dataset);
  if (!result.ok()) {
    std::fprintf(stderr, "eval: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Matching quality: F1 %.3f (precision %.3f, recall %.3f)\n",
              result->f1, result->precision, result->recall);
  return 0;
}
