// CSV workflow: the path a real user takes — load a handful of CSVs they do
// not know the join structure of, fit Leva, inspect what the system inferred
// (column classes, graph statistics, removed dirty tokens), and export the
// embedding.
#include <cstdio>

#include "core/pipeline.h"
#include "table/csv.h"

using namespace leva;

namespace {

// Three CSVs "found on a shared drive": note the dirty "?" markers, the
// shared customer ids that imply a join, and "Washington" appearing both as
// a person and a city (the accidental-collision case of Section 3.2).
constexpr const char* kOrdersCsv =
    "order_id,customer,city,amount\n"
    "o1,c1,Seattle,120.5\n"
    "o2,c2,Washington,80.0\n"
    "o3,c1,Seattle,99.9\n"
    "o4,c3,?,45.0\n"
    "o5,c4,Portland,300.2\n"
    "o6,c2,Washington,75.5\n"
    "o7,c5,Seattle,12.0\n"
    "o8,c6,Portland,88.8\n";

constexpr const char* kCustomersCsv =
    "cust_id,name,segment\n"
    "c1,Alice,retail\n"
    "c2,Washington,wholesale\n"
    "c3,Carol,retail\n"
    "c4,Dan,?\n"
    "c5,Eve,wholesale\n"
    "c6,Frank,retail\n";

constexpr const char* kSegmentsCsv =
    "segment,discount\n"
    "retail,0.05\n"
    "wholesale,0.12\n";

}  // namespace

int main() {
  Database db;
  struct Source {
    const char* name;
    const char* csv;
  };
  for (const Source& src : {Source{"orders", kOrdersCsv},
                            Source{"customers", kCustomersCsv},
                            Source{"segments", kSegmentsCsv}}) {
    auto table = ReadCsvString(src.csv, src.name);
    if (!table.ok()) {
      std::fprintf(stderr, "csv %s: %s\n", src.name,
                   table.status().ToString().c_str());
      return 1;
    }
    std::printf("Loaded %-10s %zu rows x %zu columns\n", src.name,
                table->NumRows(), table->NumColumns());
    (void)db.AddTable(std::move(*table));
  }

  LevaConfig config;
  config.embedding_dim = 16;
  config.textify.bin_count = 4;   // tiny data, tiny histograms
  config.graph.theta_min = 0.0;   // keep every attribute at this scale
  LevaPipeline pipeline(config);
  if (Status s = pipeline.Fit(db); !s.ok()) {
    std::fprintf(stderr, "fit: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("\nWhat Leva inferred:\n");
  for (const Table& t : db.tables()) {
    for (const Column& c : t.columns()) {
      auto cls = pipeline.textifier().ClassOf(t.name(), c.name);
      std::printf("  %-20s -> %s\n", (t.name() + "." + c.name).c_str(),
                  cls.ok() ? ColumnClassName(*cls).c_str() : "?");
    }
  }
  const GraphStats& stats = pipeline.graph().stats();
  std::printf("\nGraph: %zu row nodes, %zu value nodes, %zu edges\n",
              stats.row_nodes, stats.value_nodes, stats.edges);
  std::printf("Refinement removed %zu missing-data tokens and %zu "
              "single-row tokens\n",
              stats.tokens_removed_missing, stats.tokens_removed_unshared);

  // The shared customer ids became value nodes: the reconstructed join.
  std::printf("\nReconstructed join evidence (value node for 'c1'): %s\n",
              pipeline.graph().ValueNode("c1") != kInvalidNode ? "present"
                                                               : "absent");
  std::printf("Dirty token '?' kept? %s\n",
              pipeline.graph().ValueNode("?") != kInvalidNode ? "yes" : "no");

  std::printf("\nEmbedding exported: %zu vectors of dim %zu\n",
              pipeline.embedding().size(), pipeline.embedding().dim());
  return 0;
}
