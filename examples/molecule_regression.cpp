// Regression scenario (the Bio dataset): predict a molecule's bioactivity
// from atom- and bond-level tables. Demonstrates the MF/RW choice, the stage
// profile, and embedding serialization.
#include <cstdio>

#include "baselines/experiment.h"
#include "baselines/leva_model.h"
#include "datagen/datasets.h"

using namespace leva;

int main() {
  auto config = DatasetConfigByName("bio");
  if (!config.ok()) return 1;
  auto data = GenerateSynthetic(*config);
  if (!data.ok()) return 1;
  auto task = PrepareTask(std::move(*data), 0.25, 103);
  if (!task.ok()) return 1;

  for (const EmbeddingMethod method :
       {EmbeddingMethod::kMatrixFactorization, EmbeddingMethod::kRandomWalk}) {
    const char* label =
        method == EmbeddingMethod::kMatrixFactorization ? "MF" : "RW";
    LevaModel model(FastLevaConfig(method));
    auto mae =
        EvaluateEmbeddingModel(&model, *task, ModelKind::kElasticNet, 1);
    if (!mae.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", label,
                   mae.status().ToString().c_str());
      continue;
    }
    std::printf("Leva-%s  test MAE %.3f   stage profile:", label, *mae);
    for (const auto& [stage, secs] : model.pipeline().profile().stages()) {
      std::printf("  %s=%.3fs", stage.c_str(), secs);
    }
    std::printf("\n");
  }

  // The embedding is a plain token -> vector store; it serializes to text so
  // other systems can consume it.
  LevaModel model(FastLevaConfig(EmbeddingMethod::kMatrixFactorization));
  if (!model.Fit(task->fit_db).ok()) return 1;
  const std::string text = model.embedding().ToText();
  std::printf("Serialized embedding: %zu vectors, %zu bytes of text\n",
              model.embedding().size(), text.size());
  return 0;
}
