// Loan-default scenario (the Financial dataset of the paper's intro): predict
// whether a loan defaults when the predictive signal lives in account,
// district and transaction tables. Compares the analyst's three options —
// Base Table, Full Table (+FE) — against Leva's keyless embedding.
#include <cstdio>

#include "baselines/experiment.h"
#include "baselines/leva_model.h"
#include "datagen/datasets.h"

using namespace leva;

int main() {
  auto config = DatasetConfigByName("financial");
  if (!config.ok()) return 1;
  auto data = GenerateSynthetic(*config);
  if (!data.ok()) return 1;
  std::printf("Financial-shaped database: %zu tables, %zu rows total\n",
              data->db.tables().size(), data->db.TotalRows());

  auto task = PrepareTask(std::move(*data), 0.25, 101);
  if (!task.ok()) return 1;

  const ModelKind model = ModelKind::kRandomForest;
  auto report = [&](const char* label, Result<double> score) {
    if (score.ok()) {
      std::printf("  %-28s accuracy %.3f\n", label, *score);
    } else {
      std::printf("  %-28s failed: %s\n", label,
                  score.status().ToString().c_str());
    }
  };

  std::printf("\nAnalyst options (random forest downstream):\n");
  report("Base Table (no effort)",
         EvaluateTabularBaseline(*task, TabularBaseline::kBase, 0, model, 1));
  report("Full Table (knows joins)",
         EvaluateTabularBaseline(*task, TabularBaseline::kFull, 0, model, 1));
  report("Full + Feature Engineering",
         EvaluateTabularBaseline(*task, TabularBaseline::kFull, 20, model, 1));
  report("Discovery system joins",
         EvaluateTabularBaseline(*task, TabularBaseline::kDisc, 0, model, 1));

  std::printf("\nLeva (keyless, no human effort):\n");
  LevaModel mf(FastLevaConfig(EmbeddingMethod::kMatrixFactorization));
  report("Leva embedding (MF)", EvaluateEmbeddingModel(&mf, *task, model, 1));
  LevaModel rw(FastLevaConfig(EmbeddingMethod::kRandomWalk));
  report("Leva embedding (RW)", EvaluateEmbeddingModel(&rw, *task, model, 1));

  std::printf("\nLeva sits in the top-right quadrant of the paper's Fig. 1: "
              "Full-Table-level accuracy at Base-Table-level effort.\n");
  return 0;
}
