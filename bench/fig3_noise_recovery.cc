// Reproduces Fig. 3: can a downstream model recover the clean embedding
// E_clean from the noisy embedding E_all?
//
// STUDENT database (Table 1); K white-noise attributes are injected into all
// three tables. A linear map and a fully connected network are trained to map
// E_all(t) -> E_clean(t) on 80% of the shared tokens; R^2 on the held-out 20%
// measures how much of the clean information survives in the noisy embedding.
// Expected shape: R^2 stays high as noise grows, degrading faster for the
// linear map than for the network.
#include <cmath>
#include <cstdio>

#include "baselines/leva_model.h"
#include "bench/bench_util.h"
#include "core/pipeline.h"
#include "datagen/synthetic.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/mlp.h"

namespace leva {
namespace {

Embedding BuildEmbedding(size_t noise_attrs, size_t dim, uint64_t seed) {
  auto data = bench::CheckOk(GenerateStudent(400, noise_attrs, 17),
                             "generate student");
  LevaConfig config;
  config.method = EmbeddingMethod::kMatrixFactorization;
  // The noisy embedding keeps the paper's default size; extra noise
  // attributes consume spectral capacity, which is exactly the effect under
  // study.
  config.embedding_dim = dim;
  config.textify.bin_count = 10;  // bin size 10 as in Section 5.2
  config.seed = seed;
  LevaPipeline pipeline(config);
  bench::CheckOk(pipeline.Fit(data.db), "fit");
  return pipeline.embedding();
}

struct Recovery {
  double linear_r2 = 0;
  double mlp_r2 = 0;
};

// Pooled R^2 over all output dimensions: 1 - SSE_total / SST_total. A
// variance-weighted measure, so near-constant embedding dimensions do not
// dominate the score.
double MeanR2(const Matrix& truth, const Matrix& pred) {
  double sse = 0;
  double sst = 0;
  for (size_t j = 0; j < truth.cols(); ++j) {
    double mean = 0;
    for (size_t i = 0; i < truth.rows(); ++i) mean += truth(i, j);
    mean /= static_cast<double>(truth.rows());
    for (size_t i = 0; i < truth.rows(); ++i) {
      sse += (truth(i, j) - pred(i, j)) * (truth(i, j) - pred(i, j));
      sst += (truth(i, j) - mean) * (truth(i, j) - mean);
    }
  }
  return sst > 0 ? 1.0 - sse / sst : 0.0;
}

Recovery Evaluate(const Embedding& clean, const Embedding& noisy) {
  // Shared tokens between the two embedding spaces.
  std::vector<std::string> shared;
  for (const std::string& key : clean.keys()) {
    if (noisy.Has(key)) shared.push_back(key);
  }
  Rng rng(5);
  rng.Shuffle(&shared);
  const size_t train_n = shared.size() * 8 / 10;

  const size_t in_dim = noisy.dim();
  const size_t out_dim = clean.dim();
  Matrix train_x(train_n, in_dim);
  Matrix train_y(train_n, out_dim);
  Matrix test_x(shared.size() - train_n, in_dim);
  Matrix test_y(shared.size() - train_n, out_dim);
  for (size_t i = 0; i < shared.size(); ++i) {
    const auto xv = noisy.Get(shared[i]);
    const auto yv = clean.Get(shared[i]);
    Matrix& x = i < train_n ? train_x : test_x;
    Matrix& y = i < train_n ? train_y : test_y;
    const size_t r = i < train_n ? i : i - train_n;
    for (size_t j = 0; j < in_dim; ++j) x(r, j) = xv[j];
    for (size_t j = 0; j < out_dim; ++j) y(r, j) = yv[j];
  }

  // Standardize the noisy inputs (fit on train statistics).
  {
    std::vector<double> mean(in_dim, 0.0);
    std::vector<double> stddev(in_dim, 0.0);
    for (size_t i = 0; i < train_n; ++i) {
      for (size_t j = 0; j < in_dim; ++j) mean[j] += train_x(i, j);
    }
    for (double& m : mean) m /= static_cast<double>(train_n);
    for (size_t i = 0; i < train_n; ++i) {
      for (size_t j = 0; j < in_dim; ++j) {
        stddev[j] += (train_x(i, j) - mean[j]) * (train_x(i, j) - mean[j]);
      }
    }
    for (double& sd : stddev) {
      sd = std::sqrt(sd / static_cast<double>(train_n));
      if (sd < 1e-12) sd = 1.0;
    }
    for (size_t j = 0; j < in_dim; ++j) {
      for (size_t i = 0; i < train_x.rows(); ++i) {
        train_x(i, j) = (train_x(i, j) - mean[j]) / stddev[j];
      }
      for (size_t i = 0; i < test_x.rows(); ++i) {
        test_x(i, j) = (test_x(i, j) - mean[j]) / stddev[j];
      }
    }
  }

  Recovery out;
  // Linear map: one regressor per output dimension.
  {
    Matrix pred(test_x.rows(), out_dim);
    for (size_t j = 0; j < out_dim; ++j) {
      std::vector<double> y(train_n);
      for (size_t i = 0; i < train_n; ++i) y[i] = train_y(i, j);
      ElasticNetOptions options;
      options.epochs = 150;
      options.learning_rate = 0.1;
      LinearRegressor model(options);
      bench::CheckOk(model.Fit(train_x, y, &rng), "linear fit");
      const std::vector<double> p = model.Predict(test_x);
      for (size_t i = 0; i < p.size(); ++i) pred(i, j) = p[i];
    }
    out.linear_r2 = MeanR2(test_y, pred);
  }
  // Fully connected network, multi-output.
  {
    MlpOptions options;
    options.classification = false;
    options.hidden_dim = 128;
    options.epochs = 500;
    options.learning_rate = 0.02;
    MLP mlp(options);
    bench::CheckOk(mlp.FitMulti(train_x, train_y, &rng), "mlp fit");
    out.mlp_r2 = MeanR2(test_y, mlp.PredictMulti(test_x));
  }
  return out;
}

void Run() {
  std::printf("== Fig. 3: %% of noisy attributes vs R^2 of E_clean recovery "
              "(higher is better) ==\n");
  bench::TablePrinter table({"K-noise", "noise-%", "linear-R2", "nn-R2"});
  table.PrintHeader();

  const Embedding clean = BuildEmbedding(0, 32, 42);
  for (const size_t k : {size_t{2}, size_t{4}, size_t{8}, size_t{16}}) {
    const Embedding noisy = BuildEmbedding(k, 100, 42);
    const Recovery r = Evaluate(clean, noisy);
    // STUDENT has 8 original attributes; each table gains k noise columns.
    const double noise_pct = 100.0 * (3.0 * static_cast<double>(k)) /
                             (8.0 + 3.0 * static_cast<double>(k));
    table.PrintRow("K=" + std::to_string(k),
                   {noise_pct, r.linear_r2, r.mlp_r2});
  }
  std::printf("\n(paper Fig. 3: the NN keeps recovering E_clean as noise "
              "grows; the linear map degrades faster)\n");
}

}  // namespace
}  // namespace leva

int main() {
  leva::Run();
  return 0;
}
