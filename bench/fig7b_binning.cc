// Reproduces Fig. 7b: effect of the number of histogram bins on downstream
// performance — accuracy on the Genes-shaped classification task and MAE on
// the Bio-shaped regression task, for bin counts {10, 20, 40, 80, 160}.
//
// Expected shape: performance improves with bin count up to a point (~40-80),
// then degrades as over-binning destroys the shared-bin edges.
#include <cstdio>

#include "baselines/experiment.h"
#include "baselines/leva_model.h"
#include "bench/bench_util.h"
#include "datagen/datasets.h"

namespace leva {
namespace {

// Numeric-only task shaped like `classification ? genes : bio`: binning is
// the only channel carrying the dimension tables' signal, which is what this
// ablation studies.
SyntheticConfig NumericConfig(bool classification) {
  SyntheticConfig c;
  c.name = classification ? "genes_numeric" : "bio_numeric";
  c.base_rows = 1200;
  c.classification = classification;
  c.num_classes = 3;
  c.dims = {
      {.name = "attrs", .rows = 120, .predictive_numeric = 3,
       .predictive_categorical = 0, .noise_numeric = 1,
       .noise_categorical = 0, .categories = 8, .parent = ""},
      {.name = "pairs", .rows = 150, .predictive_numeric = 2,
       .predictive_categorical = 0, .noise_numeric = 1,
       .noise_categorical = 0, .categories = 8, .parent = ""},
  };
  c.seed = classification ? 11 : 16;
  return c;
}

double RunWithBins(bool classification, size_t bins, ModelKind model,
                   uint64_t seed) {
  auto data =
      bench::CheckOk(GenerateSynthetic(NumericConfig(classification)),
                     "generate");
  auto task =
      bench::CheckOk(PrepareTask(std::move(data), 0.25, 83), "prepare");
  LevaConfig cfg = FastLevaConfig(EmbeddingMethod::kMatrixFactorization, seed);
  cfg.textify.bin_count = bins;
  LevaModel leva(cfg);
  return bench::CheckOk(EvaluateEmbeddingModel(&leva, task, model, 1), "eval");
}

void Run() {
  std::printf("== Fig. 7b: bin count vs downstream performance ==\n");
  bench::TablePrinter table({"bins", "genes-acc", "bio-MAE"});
  table.PrintHeader();
  for (const size_t bins : {size_t{2}, size_t{10}, size_t{20}, size_t{40},
                            size_t{80}, size_t{160}}) {
    const double acc = RunWithBins(true, bins, ModelKind::kRandomForest, 42);
    const double mae = RunWithBins(false, bins, ModelKind::kElasticNet, 42);
    table.PrintRow(std::to_string(bins), {acc, mae});
  }
  std::printf("\n(paper Fig. 7b: too few bins lose resolution, too many bins "
              "lose the shared-bin edges; the middle wins)\n");
}

}  // namespace
}  // namespace leva

int main() {
  leva::Run();
  return 0;
}
