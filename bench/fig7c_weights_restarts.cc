// Reproduces Fig. 7c: two random-walk ablations on three datasets —
// (1) weighted vs unweighted graphs, and (2) restart walks (6 normal epochs +
// 4 epochs restarting from the worst-represented nodes) vs 10 plain epochs.
//
// Expected shape: weighting buys 1-3 accuracy points; restarts help most
// datasets by a few points.
#include <cstdio>

#include "baselines/experiment.h"
#include "baselines/leva_model.h"
#include "bench/bench_util.h"
#include "datagen/datasets.h"

namespace leva {
namespace {

double RunVariant(const ExperimentTask& task, bool weighted, bool restarts) {
  LevaConfig cfg = FastLevaConfig(EmbeddingMethod::kRandomWalk, 42, 64);
  cfg.graph.weighted = weighted;
  cfg.walks.epochs = 10;
  cfg.walks.balanced_restarts = restarts;
  cfg.walks.restart_epochs = 4;
  LevaModel leva(cfg);
  return bench::CheckOk(
      EvaluateEmbeddingModel(&leva, task, ModelKind::kRandomForest, 1),
      "eval");
}

void Run() {
  std::printf("== Fig. 7c: weighted-graph and restart-walk ablations "
              "(accuracy, RW embeddings) ==\n");
  bench::TablePrinter table(
      {"dataset", "unweighted", "weighted", "w+restart"});
  table.PrintHeader();
  for (const std::string name : {"genes", "financial", "ftp"}) {
    auto config = bench::CheckOk(DatasetConfigByName(name), "config");
    auto data = bench::CheckOk(GenerateSynthetic(config), "generate");
    auto task =
        bench::CheckOk(PrepareTask(std::move(data), 0.25, 85), "prepare");
    const double unweighted = RunVariant(task, false, false);
    const double weighted = RunVariant(task, true, false);
    const double restart = RunVariant(task, true, true);
    table.PrintRow(name, {unweighted, weighted, restart});
  }
  std::printf("\n(paper Fig. 7c: weighting boosts accuracy 1-3%%; restart "
              "walks add a few points on most datasets)\n");
}

}  // namespace
}  // namespace leva

int main() {
  leva::Run();
  return 0;
}
