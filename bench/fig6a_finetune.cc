// Reproduces Fig. 6a: plain embeddings vs fine-tuned embeddings vs the best
// reported accuracy. Fine tuning = dropping tables that carry no predictive
// information for the task (domain knowledge) + a wider hyper-parameter grid.
// "Max Reported" is proxied by an oracle model trained directly on the
// noise-free latent score the generator used to produce labels — the ceiling
// a bespoke hand-tuned method could approach.
#include <cstdio>

#include "baselines/experiment.h"
#include "baselines/leva_model.h"
#include "bench/bench_util.h"
#include "datagen/datasets.h"
#include "ml/metrics.h"
#include "ml/tree.h"

namespace leva {
namespace {

// Drops dimension tables that have no predictive columns (the "use domain
// knowledge to drop tables" step of the paper's fine tuning).
SyntheticConfig DropUselessTables(SyntheticConfig config) {
  std::vector<DimTableSpec> kept;
  for (const DimTableSpec& d : config.dims) {
    // Keep a table if it (or a child hanging off it) carries signal; children
    // are declared after parents, so a simple predictive check suffices here.
    if (d.predictive_numeric + d.predictive_categorical > 0) kept.push_back(d);
  }
  // Drop children whose parent got removed.
  std::vector<DimTableSpec> valid;
  for (const DimTableSpec& d : kept) {
    if (d.parent.empty()) {
      valid.push_back(d);
      continue;
    }
    bool parent_ok = false;
    for (const DimTableSpec& p : valid) {
      if (p.name == d.parent) parent_ok = true;
    }
    if (parent_ok) valid.push_back(d);
  }
  config.dims = std::move(valid);
  return config;
}

// Oracle ceiling: a forest trained on the latent score itself.
double MaxReportedProxy(const ExperimentTask& task, uint64_t seed) {
  Rng rng(seed);
  MLDataset ds;
  ds.classification = true;
  ds.num_classes = task.encoder.num_classes();
  ds.x = Matrix(task.data.latent_score.size(), 1);
  ds.y.resize(task.data.latent_score.size());
  const Table* base = task.data.db.FindTable("base");
  const size_t target = *base->ColumnIndex(task.data.target_column);
  for (size_t r = 0; r < ds.x.rows(); ++r) {
    ds.x(r, 0) = task.data.latent_score[r];
    ds.y[r] = *task.encoder.Encode(base->at(r, target));
  }
  const MLDataset train = ds.Subset(task.train_rows);
  const MLDataset test = ds.Subset(task.test_rows);
  ForestOptions options;
  options.num_trees = 40;
  options.tree.num_classes = ds.num_classes;
  RandomForest forest(options);
  bench::CheckOk(forest.Fit(train.x, train.y, &rng), "oracle fit");
  return Accuracy(test.y, forest.Predict(test.x));
}

void Run() {
  std::printf("== Fig. 6a: plain vs fine-tuned embeddings vs Max Reported "
              "(accuracy, random forest) ==\n");
  bench::TablePrinter table({"dataset", "Emb-MF", "MF-tuned", "Emb-RW",
                             "RW-tuned", "MaxRep"},
                            12);
  table.PrintHeader();

  for (const std::string name : {"genes", "kraken", "financial"}) {
    auto config = bench::CheckOk(DatasetConfigByName(name), "config");
    auto data = bench::CheckOk(GenerateSynthetic(config), "generate");
    auto task =
        bench::CheckOk(PrepareTask(std::move(data), 0.25, 61), "prepare");

    // Fine-tuned variant: same rows, tables dropped by domain knowledge.
    auto tuned_config = DropUselessTables(*DatasetConfigByName(name));
    auto tuned_data =
        bench::CheckOk(GenerateSynthetic(tuned_config), "generate tuned");
    auto tuned_task = bench::CheckOk(
        PrepareTask(std::move(tuned_data), 0.25, 61), "prepare tuned");

    const ModelKind model = ModelKind::kRandomForest;
    LevaModel mf(FastLevaConfig(EmbeddingMethod::kMatrixFactorization));
    const double emb_mf =
        bench::CheckOk(EvaluateEmbeddingModel(&mf, task, model, 1), "mf");
    LevaModel mf_tuned(FastLevaConfig(EmbeddingMethod::kMatrixFactorization));
    const double mf_ft = bench::CheckOk(
        EvaluateEmbeddingModel(&mf_tuned, tuned_task, model, 1, true),
        "mf tuned");
    LevaModel rw(FastLevaConfig(EmbeddingMethod::kRandomWalk));
    const double emb_rw =
        bench::CheckOk(EvaluateEmbeddingModel(&rw, task, model, 1), "rw");
    LevaModel rw_tuned(FastLevaConfig(EmbeddingMethod::kRandomWalk));
    const double rw_ft = bench::CheckOk(
        EvaluateEmbeddingModel(&rw_tuned, tuned_task, model, 1, true),
        "rw tuned");
    const double max_rep = MaxReportedProxy(task, 9);

    table.PrintRow(name, {emb_mf, mf_ft, emb_rw, rw_ft, max_rep});
  }
  std::printf("\n(paper Fig. 6a: fine tuning closes most of the gap to the "
              "Max Reported ceiling)\n");
}

}  // namespace
}  // namespace leva

int main() {
  leva::Run();
  return 0;
}
