// Reproduces Table 6: deployment-strategy ablation. Row-only featurization is
// the baseline; Row+Value is evaluated with and without regularization
// (min-samples-per-leaf for forests, L1 penalty for logistic regression,
// dropout for the NN). Reported numbers are accuracy deltas (x100) vs Row.
//
// Expected shape: Row+Value with regularization beats Row+Value without, and
// usually beats Row.
#include <cstdio>

#include "baselines/experiment.h"
#include "baselines/leva_model.h"
#include "bench/bench_util.h"
#include "datagen/datasets.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/tree.h"

namespace leva {
namespace {

double EvalModel(ModelKind kind, size_t num_classes, const MLDataset& train,
                 const MLDataset& test, bool regularized, uint64_t seed) {
  Rng rng(seed);
  std::unique_ptr<Model> model;
  switch (kind) {
    case ModelKind::kRandomForest: {
      ForestOptions options;
      options.num_trees = 40;
      options.tree.num_classes = num_classes;
      options.tree.min_samples_leaf = regularized ? 8 : 1;
      model = std::make_unique<RandomForest>(options);
      break;
    }
    case ModelKind::kLogistic: {
      ElasticNetOptions options;
      options.lambda = regularized ? 1e-2 : 0.0;
      options.l1_ratio = 1.0;  // L1 penalty
      options.epochs = 40;
      model = std::make_unique<LogisticRegressor>(num_classes, options);
      break;
    }
    default: {
      MlpOptions options;
      options.num_classes = num_classes;
      options.dropout = regularized ? 0.3 : 0.0;
      options.epochs = 40;
      model = std::make_unique<MLP>(options);
      break;
    }
  }
  bench::CheckOk(model->Fit(train.x, train.y, &rng), "fit");
  return Accuracy(test.y, model->Predict(test.x));
}

void Run() {
  std::printf("== Table 6: deployment strategy ablation (accuracy deltas "
              "x100 vs Row-only) ==\n");
  std::printf("%-14s%-16s%-16s\n", "name", "R+V no-reg", "R+V reg");

  for (const std::string name : {"genes", "ftp"}) {
    auto config = bench::CheckOk(DatasetConfigByName(name), "config");
    auto data = bench::CheckOk(GenerateSynthetic(config), "generate");
    auto task =
        bench::CheckOk(PrepareTask(std::move(data), 0.25, 71), "prepare");

    LevaConfig row_config =
        FastLevaConfig(EmbeddingMethod::kMatrixFactorization);
    row_config.featurization = Featurization::kRowOnly;
    LevaModel row_model(row_config);
    bench::CheckOk(row_model.Fit(task.fit_db), "fit row");
    const auto row_data =
        bench::CheckOk(FeaturizeTask(row_model, task), "feat row");

    LevaConfig rv_config =
        FastLevaConfig(EmbeddingMethod::kMatrixFactorization);
    rv_config.featurization = Featurization::kRowPlusValue;
    LevaModel rv_model(rv_config);
    bench::CheckOk(rv_model.Fit(task.fit_db), "fit r+v");
    const auto rv_data =
        bench::CheckOk(FeaturizeTask(rv_model, task), "feat r+v");

    const size_t classes = task.encoder.num_classes();
    for (const ModelKind kind :
         {ModelKind::kRandomForest, ModelKind::kLogistic, ModelKind::kMlp}) {
      const double row = EvalModel(kind, classes, row_data.first,
                                   row_data.second, false, 1);
      const double rv_noreg =
          EvalModel(kind, classes, rv_data.first, rv_data.second, false, 1);
      const double rv_reg =
          EvalModel(kind, classes, rv_data.first, rv_data.second, true, 1);
      std::printf("%-14s%+-16.2f%+-16.2f\n",
                  (name + ", " + ModelKindName(kind)).c_str(),
                  100.0 * (rv_noreg - row), 100.0 * (rv_reg - row));
    }
  }
  std::printf("\n(paper Table 6: regularized Row+Value >= unregularized; "
              "Row+Value usually improves on Row)\n");
}

}  // namespace
}  // namespace leva

int main() {
  leva::Run();
  return 0;
}
