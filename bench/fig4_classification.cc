// Reproduces Fig. 4: classification accuracy of Base / Full / Full+FE / Disc
// / Emb-MF / Emb-RW across four datasets and three downstream models
// (random forest, logistic regression + ElasticNet, 2-layer NN).
//
// Expected shape (paper): Full/Full+FE/Disc > Base; Disc <= Full; embeddings
// match Full(+FE) without using any join information.
#include <cstdio>

#include "baselines/experiment.h"
#include "baselines/leva_model.h"
#include "bench/bench_util.h"
#include "datagen/datasets.h"

namespace leva {
namespace {

void Run() {
  const std::vector<std::string> datasets = {"genes", "kraken", "ftp",
                                             "financial"};
  const std::vector<ModelKind> models = {ModelKind::kRandomForest,
                                         ModelKind::kLogistic,
                                         ModelKind::kMlp};

  for (const ModelKind model : models) {
    std::printf("\n== Fig. 4 (%s): classification accuracy ==\n",
                ModelKindName(model).c_str());
    bench::TablePrinter table(
        {"dataset", "Base", "Full", "Full+FE", "Disc", "Emb-MF", "Emb-RW"});
    table.PrintHeader();
    for (const std::string& name : datasets) {
      auto config = bench::CheckOk(DatasetConfigByName(name), "config");
      auto data = bench::CheckOk(GenerateSynthetic(config), "generate");
      auto task = bench::CheckOk(PrepareTask(std::move(data), 0.25, 97),
                                 "prepare");

      const double base = bench::CheckOk(
          EvaluateTabularBaseline(task, TabularBaseline::kBase, 0, model, 1),
          "base");
      const double full = bench::CheckOk(
          EvaluateTabularBaseline(task, TabularBaseline::kFull, 0, model, 1),
          "full");
      const double full_fe = bench::CheckOk(
          EvaluateTabularBaseline(task, TabularBaseline::kFull, 20, model, 1),
          "full+fe");
      const double disc = bench::CheckOk(
          EvaluateTabularBaseline(task, TabularBaseline::kDisc, 0, model, 1),
          "disc");

      LevaModel mf(FastLevaConfig(EmbeddingMethod::kMatrixFactorization));
      const double emb_mf =
          bench::CheckOk(EvaluateEmbeddingModel(&mf, task, model, 1), "mf");
      LevaModel rw(FastLevaConfig(EmbeddingMethod::kRandomWalk));
      const double emb_rw =
          bench::CheckOk(EvaluateEmbeddingModel(&rw, task, model, 1), "rw");

      table.PrintRow(name, {base, full, full_fe, disc, emb_mf, emb_rw});
    }
  }
  std::printf(
      "\n(higher is better; embeddings are keyless while Full/Full+FE/Disc "
      "consume join information)\n");
}

}  // namespace
}  // namespace leva

int main() {
  leva::Run();
  return 0;
}
