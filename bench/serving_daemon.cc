// Serving-daemon load generator: drives the batched embedding server over
// real loopback TCP and reports throughput and latency percentiles for
// coalesced batching vs batch-size-1 serving, plus the backpressure behavior
// of a saturated admission queue (OVERLOADED rejections, not timeouts).
//
// Modes:
//   (no args)                 in-process bench: fit, serve, drive, print the
//                             EXPERIMENTS.md table
//   --fit-snapshots A.leva B.leva
//                             fit two models (seeds 5/77) over the same
//                             schema and snapshot them (CI smoke setup)
//   --connect HOST PORT [--clients N] [--iters N] [--rows N] [--window N]
//             [--reload SNAPSHOT]
//                             drive an external leva_served: concurrent
//                             clients, optionally one hot RELOAD mid-load;
//                             exits nonzero on any error
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "datagen/synthetic.h"
#include "serve/batcher.h"
#include "serve/client.h"
#include "serve/server.h"

namespace leva::serve {
namespace {

// Heavy profile for the loopback bench (execution cost must be realistic);
// the CI-smoke modes (--fit-snapshots / --connect) use a light model that
// fits in seconds.
constexpr size_t kStudents = 600;
constexpr size_t kNoiseAttributes = 8;
constexpr size_t kDim = 512;
constexpr size_t kSmokeStudents = 240;
constexpr size_t kSmokeDim = 32;

LevaConfig BenchConfig(uint64_t seed, size_t dim) {
  LevaConfig config;
  config.method = EmbeddingMethod::kMatrixFactorization;
  config.embedding_dim = dim;
  config.word2vec.deterministic = true;
  config.seed = seed;
  return config;
}

struct Workload {
  SyntheticDataset ds;
  const Table* base = nullptr;
};

Workload MakeWorkload(size_t students, size_t noise_attributes) {
  Workload w;
  auto ds = GenerateStudent(students, noise_attributes, 3);
  if (!ds.ok()) {
    std::fprintf(stderr, "datagen: %s\n", ds.status().ToString().c_str());
    std::exit(1);
  }
  w.ds = std::move(ds).value();
  w.base = w.ds.db.FindTable(w.ds.base_table);
  return w;
}

/// Rows [lo, hi) of the base table without the label column.
Table ServingRows(const Workload& w, size_t lo, size_t hi) {
  Table t(w.base->name());
  for (const Column& c : w.base->columns()) {
    if (c.name == w.ds.target_column) continue;
    Column col{c.name, c.type, {}};
    col.values.assign(c.values.begin() + static_cast<long>(lo),
                      c.values.begin() + static_cast<long>(hi));
    (void)t.AddColumn(std::move(col));
  }
  return t;
}

struct DriveResult {
  size_t ok = 0;
  size_t overloaded = 0;
  size_t errors = 0;
  double wall_seconds = 0;
  std::vector<double> latencies;  // seconds, OK requests only
};

/// `clients` threads, each its own connection, each `iters` rounds of a
/// pipelined `window` of `rows_per_request`-row FEATURIZE requests: the whole
/// window is sent back-to-back, then responses are collected in completion
/// order. Per-request latency runs from its send to its response arrival.
DriveResult Drive(const std::string& host, uint16_t port, const Workload& w,
                  size_t clients, size_t iters, size_t rows_per_request,
                  size_t window) {
  std::vector<DriveResult> per_thread(clients);
  std::vector<std::thread> threads;
  WallTimer wall;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      DriveResult& r = per_thread[c];
      Client client;
      if (!client.Connect(host, port, /*timeout_ms=*/60000).ok()) {
        r.errors += iters * window;
        return;
      }
      const size_t lo = (c * rows_per_request) % (w.base->NumRows() / 2);
      FeaturizeRequest req;
      req.rows = ServingRows(w, lo, lo + rows_per_request);
      for (size_t i = 0; i < iters; ++i) {
        WallTimer timer;
        size_t sent = 0;
        for (size_t k = 0; k < window; ++k) {
          req.request_id = client.NextRequestId();
          if (!client.Send(EncodeFeaturizeRequest(req)).ok()) {
            ++r.errors;
            continue;
          }
          ++sent;
        }
        for (size_t k = 0; k < sent; ++k) {
          auto response = client.ReadResponse();
          if (!response.ok()) {
            ++r.errors;
          } else if (response->status.code() ==
                     StatusCode::kResourceExhausted) {
            ++r.overloaded;
          } else if (!response->status.ok() ||
                     response->rows != rows_per_request) {
            ++r.errors;
          } else {
            ++r.ok;
            r.latencies.push_back(timer.ElapsedSeconds());
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  DriveResult total;
  total.wall_seconds = wall.ElapsedSeconds();
  for (DriveResult& r : per_thread) {
    total.ok += r.ok;
    total.overloaded += r.overloaded;
    total.errors += r.errors;
    total.latencies.insert(total.latencies.end(), r.latencies.begin(),
                           r.latencies.end());
  }
  return total;
}

int RunLoopbackBench() {
  const Workload w = MakeWorkload(kStudents, kNoiseAttributes);
  LevaPipeline fitted(BenchConfig(5, kDim));
  if (Status s = fitted.Fit(w.ds.db); !s.ok()) {
    std::fprintf(stderr, "fit: %s\n", s.ToString().c_str());
    return 1;
  }
  const std::string snapshot = "/tmp/leva_serving_daemon_bench.leva";
  if (Status s = fitted.SaveSnapshot(snapshot); !s.ok()) {
    std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
    return 1;
  }

  constexpr size_t kClients = 16;
  constexpr size_t kIters = 30;
  constexpr size_t kWindow = 16;  // pipelined requests in flight per client
  constexpr size_t kRowsPerRequest = 4;
  constexpr size_t kRequests = kClients * kIters * kWindow;

  struct Config {
    const char* name;
    size_t max_batch_rows;
    size_t max_delay_us;
  };
  // The coalescing target matches what the pipelined concurrency can fill
  // (8 clients x 8-deep windows x 4 rows): full batches flush immediately,
  // the delay cap only bounds straggler waits.
  const Config configs[] = {
      {"batch-size-1", 1, 0},
      {"coalesced-1024", kClients * kWindow * kRowsPerRequest, 1000},
  };

  std::printf("# serving_daemon: %zu clients x %zu-deep pipeline x %zu "
              "rounds of %zu-row requests over loopback TCP (dim %zu, "
              "%zu-student model)\n",
              kClients, kWindow, kIters, kRowsPerRequest, kDim, kStudents);
  std::printf("%-14s %7s %8s %8s %9s %9s %9s %15s\n", "config", "reqs",
              "wall_s", "req/s", "rows/s", "p50_ms", "p99_ms",
              "rows_per_batch");
  for (const Config& config : configs) {
    LevaPipeline pipeline;
    if (Status s = pipeline.LoadSnapshot(snapshot); !s.ok()) {
      std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
      return 1;
    }
    ServerOptions options;
    options.batcher.max_batch_rows = config.max_batch_rows;
    options.batcher.max_delay_us = config.max_delay_us;
    Server server(&pipeline, options);
    if (Status s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
      return 1;
    }
    const DriveResult r = Drive("127.0.0.1", server.port(), w, kClients,
                                kIters, kRowsPerRequest, kWindow);
    Client stats_client;
    double rows_per_batch = 0;
    if (stats_client.Connect("127.0.0.1", server.port()).ok()) {
      if (auto stats = stats_client.Stats(); stats.ok()) {
        rows_per_batch = StatsField(*stats, "rows_per_batch");
      }
    }
    server.Shutdown();
    if (r.errors != 0 || r.ok != kRequests) {
      std::fprintf(stderr, "%s: %zu error(s), %zu/%zu ok\n", config.name,
                   r.errors, r.ok, kRequests);
      return 1;
    }
    const bench::LatencySummary lat = bench::SummarizeLatencies(r.latencies);
    std::printf("%-14s %7zu %8.3f %8.0f %9.0f %9.3f %9.3f %15.1f\n",
                config.name, r.ok, r.wall_seconds, r.ok / r.wall_seconds,
                r.ok * kRowsPerRequest / r.wall_seconds, lat.p50 * 1e3,
                lat.p99 * 1e3, rows_per_batch);
  }

  // Backpressure: a tiny admission queue under heavy concurrent load must
  // reject with OVERLOADED — deterministic bounded memory — while smaller
  // concurrent requests keep being served.
  {
    LevaPipeline pipeline;
    if (Status s = pipeline.LoadSnapshot(snapshot); !s.ok()) return 1;
    ServerOptions options;
    options.batcher.max_batch_rows = 16;
    options.batcher.max_pending_rows = 64;
    Server server(&pipeline, options);
    if (Status s = server.Start(); !s.ok()) return 1;
    const DriveResult r = Drive("127.0.0.1", server.port(), w, /*clients=*/8,
                                /*iters=*/20, /*rows_per_request=*/32,
                                /*window=*/4);
    server.Shutdown();
    std::printf("# overload (max_pending_rows=64, 8 clients x 32-row "
                "requests): %zu ok, %zu OVERLOADED, %zu errors\n",
                r.ok, r.overloaded, r.errors);
    if (r.errors != 0) {
      std::fprintf(stderr, "overload run saw %zu hard error(s)\n", r.errors);
      return 1;
    }
  }
  return 0;
}

int FitSnapshots(const std::string& path_a, const std::string& path_b) {
  const Workload w = MakeWorkload(kSmokeStudents, 0);
  const uint64_t seeds[] = {5, 77};
  const std::string* paths[] = {&path_a, &path_b};
  for (int i = 0; i < 2; ++i) {
    LevaPipeline pipeline(BenchConfig(seeds[i], kSmokeDim));
    if (Status s = pipeline.Fit(w.ds.db); !s.ok()) {
      std::fprintf(stderr, "fit seed %llu: %s\n",
                   static_cast<unsigned long long>(seeds[i]),
                   s.ToString().c_str());
      return 1;
    }
    if (Status s = pipeline.SaveSnapshot(*paths[i]); !s.ok()) {
      std::fprintf(stderr, "save %s: %s\n", paths[i]->c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::printf("fitted seed %llu -> %s\n",
                static_cast<unsigned long long>(seeds[i]),
                paths[i]->c_str());
  }
  return 0;
}

int ConnectAndDrive(const std::string& host, uint16_t port, size_t clients,
                    size_t iters, size_t rows, size_t window,
                    const std::string& reload) {
  const Workload w = MakeWorkload(kSmokeStudents, 0);

  // The daemon may still be binding: retry the first contact briefly.
  Client probe;
  Status up = Status::Internal("unreached");
  for (int attempt = 0; attempt < 50; ++attempt) {
    up = probe.Connect(host, port, /*timeout_ms=*/10000);
    if (up.ok()) up = probe.Ping();
    if (up.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!up.ok()) {
    std::fprintf(stderr, "server never came up: %s\n", up.ToString().c_str());
    return 1;
  }

  std::thread reloader;
  int reload_failures = 0;
  if (!reload.empty()) {
    reloader = std::thread([&] {
      // Fire the hot swap while the clients are mid-load.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      Client client;
      if (!client.Connect(host, port, /*timeout_ms=*/30000).ok()) {
        ++reload_failures;
        return;
      }
      ReloadRequest request;
      request.path = reload;
      if (Status s = client.Reload(request); !s.ok()) {
        std::fprintf(stderr, "reload: %s\n", s.ToString().c_str());
        ++reload_failures;
      }
    });
  }

  const DriveResult r = Drive(host, port, w, clients, iters, rows, window);
  if (reloader.joinable()) reloader.join();

  auto stats = probe.Stats();
  if (stats.ok()) {
    std::printf("# server stats after load:\n");
    for (const auto& [name, value] : *stats) {
      std::printf("  %-24s %.3f\n", name.c_str(), value);
    }
  }
  const bench::LatencySummary lat = bench::SummarizeLatencies(r.latencies);
  std::printf("%zu ok, %zu overloaded, %zu errors in %.3fs "
              "(p50 %.3fms, p99 %.3fms)\n",
              r.ok, r.overloaded, r.errors, r.wall_seconds, lat.p50 * 1e3,
              lat.p99 * 1e3);
  if (r.errors != 0 || r.ok == 0 || reload_failures != 0) {
    std::fprintf(stderr, "FAIL: errors=%zu ok=%zu reload_failures=%d\n",
                 r.errors, r.ok, reload_failures);
    return 1;
  }
  return 0;
}

int Run(int argc, char** argv) {
  std::string connect_host;
  uint16_t connect_port = 0;
  std::string fit_a, fit_b, reload;
  size_t clients = 8, iters = 50, rows = 4, window = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--fit-snapshots") {
      const char* a = next();
      const char* b = next();
      if (a == nullptr || b == nullptr) {
        std::fprintf(stderr, "--fit-snapshots needs two paths\n");
        return 1;
      }
      fit_a = a;
      fit_b = b;
    } else if (arg == "--connect") {
      const char* h = next();
      const char* p = next();
      if (h == nullptr || p == nullptr) {
        std::fprintf(stderr, "--connect needs HOST PORT\n");
        return 1;
      }
      connect_host = h;
      connect_port = static_cast<uint16_t>(std::atoi(p));
    } else if (arg == "--reload") {
      const char* v = next();
      if (v == nullptr) return 1;
      reload = v;
    } else if (arg == "--clients") {
      const char* v = next();
      if (v == nullptr) return 1;
      clients = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--iters") {
      const char* v = next();
      if (v == nullptr) return 1;
      iters = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--rows") {
      const char* v = next();
      if (v == nullptr) return 1;
      rows = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--window") {
      const char* v = next();
      if (v == nullptr) return 1;
      window = static_cast<size_t>(std::atoll(v));
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 1;
    }
  }
  if (!fit_a.empty()) return FitSnapshots(fit_a, fit_b);
  if (!connect_host.empty()) {
    return ConnectAndDrive(connect_host, connect_port, clients, iters, rows,
                           window, reload);
  }
  return RunLoopbackBench();
}

}  // namespace
}  // namespace leva::serve

int main(int argc, char** argv) { return leva::serve::Run(argc, argv); }
