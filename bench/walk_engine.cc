// WalkEngineThroughput: per-walker vs batched walk generation on synthetic
// Chung–Lu power-law graphs across three scales. The interesting regime is
// the largest one, where the CSR adjacency (plus alias slots when weighted)
// no longer fits the last-level cache: the per-walker engine pays a
// dependent random access per step, the batched engine streams
// counting-sorted frontiers through cache-sized vertex blocks. Smallest
// scale doubles as the CI smoke test (see --benchmark_filter in ci.yml).
#include <benchmark/benchmark.h>

#include <array>
#include <memory>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "embed/walks.h"
#include "embed/walks_batched.h"
#include "graph/graph.h"

namespace leva {
namespace {

struct ScaleSpec {
  size_t nodes;
  size_t edges;
};

// 100k edges: comfortably cache-resident. 1M: working set around the L3
// boundary on common parts. 10M: decisively beyond it (~120 MiB unweighted,
// ~360 MiB weighted), the acceptance scale for the batched engine.
constexpr std::array<ScaleSpec, 3> kScales = {{
    {size_t{1} << 14, 100'000},
    {size_t{1} << 17, 1'000'000},
    {size_t{1} << 20, 10'000'000},
}};

// Graphs are expensive to generate; build each (scale, weighted) variant
// once, on first use, and leak it (benchmark process lifetime).
const LevaGraph& GetGraph(size_t scale, bool weighted) {
  static std::array<std::unique_ptr<LevaGraph>, kScales.size() * 2> cache;
  const size_t slot = scale * 2 + (weighted ? 1 : 0);
  if (!cache[slot]) {
    PowerLawGraphConfig config;
    config.nodes = kScales[scale].nodes;
    config.target_edges = kScales[scale].edges;
    config.weighted = weighted;
    config.seed = 42;
    auto g = GeneratePowerLawGraph(config);
    if (!g.ok()) {
      std::fprintf(stderr, "graph generation failed: %s\n",
                   g.status().ToString().c_str());
      std::abort();
    }
    cache[slot] = std::make_unique<LevaGraph>(std::move(g).value());
  }
  return *cache[slot];
}

// Args: (scale index, batched engine?, weighted?).
void BM_WalkEngineThroughput(benchmark::State& state) {
  const size_t scale = static_cast<size_t>(state.range(0));
  const bool batched = state.range(1) != 0;
  const bool weighted = state.range(2) != 0;
  const LevaGraph& graph = GetGraph(scale, weighted);

  WalkOptions options;
  options.epochs = 1;
  options.walk_length = 20;
  options.weighted = weighted;
  options.threads = 0;  // all hardware threads
  options.engine = batched ? WalkEngine::kBatched : WalkEngine::kWalker;

  int64_t tokens = 0;
  if (batched) {
    BatchedWalkGenerator generator(&graph, options);
    Rng rng(4);
    for (auto _ : state) {
      auto corpus = generator.Generate(&rng);
      if (!corpus.ok()) state.SkipWithError("generation failed");
      tokens += static_cast<int64_t>(corpus->num_tokens());
    }
  } else {
    WalkGenerator generator(&graph, options);
    Rng rng(4);
    for (auto _ : state) {
      auto corpus = generator.Generate(&rng);
      if (!corpus.ok()) state.SkipWithError("generation failed");
      tokens += static_cast<int64_t>(corpus->num_tokens());
    }
  }
  // Tokens emitted per second — the number the EXPERIMENTS.md table and the
  // >=2x acceptance comparison are read from.
  state.SetItemsProcessed(tokens);
  state.counters["edges"] = static_cast<double>(kScales[scale].edges);
}
BENCHMARK(BM_WalkEngineThroughput)
    ->ArgNames({"scale", "batched", "weighted"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace leva

BENCHMARK_MAIN();
