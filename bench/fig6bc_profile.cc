// Reproduces Fig. 6b/6c: per-stage wall-clock profile of the Leva pipeline
// for the RW and MF embedding methods.
//
// Expected shape: embedding construction (walk generation + training, or
// factorization) dominates; textification and graph construction are
// negligible.
#include <cstdio>

#include "baselines/experiment.h"
#include "bench/bench_util.h"
#include "core/pipeline.h"
#include "datagen/datasets.h"

namespace leva {
namespace {

void Profile(const char* label, EmbeddingMethod method,
             const SyntheticDataset& data) {
  LevaPipeline pipeline(FastLevaConfig(method, 42, 64));
  bench::CheckOk(pipeline.Fit(data.db), "fit");

  // Serving stage: featurize the base table so deployment cost appears in
  // the profile next to the fit stages.
  const Table* base = data.db.FindTable(data.base_table);
  TargetEncoder encoder;
  bench::CheckOk(
      encoder.Fit(*base->FindColumn(data.target_column), data.classification),
      "encoder");
  bench::CheckOk(pipeline
                     .Featurize(*base, data.target_column, encoder,
                                /*rows_in_graph=*/true)
                     .status(),
                 "featurize");

  const StageProfile& profile = pipeline.profile();
  const double total = profile.TotalSeconds();
  std::printf("\n-- %s (total %.3fs) --\n", label, total);
  std::printf("%-24s%-12s%-10s\n", "stage", "seconds", "share");
  for (const auto& [stage, seconds] : profile.stages()) {
    std::printf("%-24s%-12.4f%-10.1f%%\n", stage.c_str(), seconds,
                total > 0 ? 100.0 * seconds / total : 0.0);
  }
}

void Run() {
  std::printf("== Fig. 6b/6c: pipeline performance profiles ==\n");
  auto config = bench::CheckOk(DatasetConfigByName("financial"), "config");
  auto data = bench::CheckOk(GenerateSynthetic(config), "generate");

  Profile("Fig. 6b: random-walk method", EmbeddingMethod::kRandomWalk, data);
  Profile("Fig. 6c: matrix-factorization method",
          EmbeddingMethod::kMatrixFactorization, data);

  std::printf("\n(paper Fig. 6b/6c: embedding construction dominates; "
              "textification + graph stages are negligible)\n");
}

}  // namespace
}  // namespace leva

int main() {
  leva::Run();
  return 0;
}
