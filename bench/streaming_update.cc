// Streaming update vs full re-fit: the economic case for the WAL-backed
// Update path. A fitted model receives a batch of new base rows (~1% of the
// table); the competitor rebuilds the whole pipeline from scratch on the
// grown database. Reported per method: wall time of each path, the speedup,
// and the downstream accuracy of both resulting models on the grown table
// (the paper's LR probe, as in tests/quantize_test.cc) — the update path
// must buy its latency win without moving the metric beyond the
// quantization-noise band (|delta| <= 0.05, the bf16 tolerance).
//
// Expected shape: the warm random-walk refresh (walks seeded only at
// new/touched nodes, SGNS continued from the served vectors) is >= 10x
// faster than re-fitting; MF has no incremental form (Update compacts and
// re-embeds, so its "speedup" only meters the graph rebuild it skips).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "core/update_log.h"
#include "datagen/synthetic.h"
#include "ml/featurize.h"
#include "ml/linear.h"
#include "ml/metrics.h"

namespace leva {
namespace {

constexpr size_t kStudents = 2000;
constexpr size_t kBatchRows = 20;  // 1% of the base table
constexpr size_t kFitRows = kStudents - kBatchRows;

Table SliceRows(const Table& t, size_t begin, size_t end) {
  Table out(t.name());
  for (const Column& c : t.columns()) {
    Column col;
    col.name = c.name;
    col.type = c.type;
    col.values.assign(c.values.begin() + static_cast<ptrdiff_t>(begin),
                      c.values.begin() + static_cast<ptrdiff_t>(end));
    bench::CheckOk(out.AddColumn(std::move(col)), "slice column");
  }
  return out;
}

LevaConfig BenchConfig(EmbeddingMethod method) {
  LevaConfig config;
  config.method = method;
  config.embedding_dim = 32;
  config.word2vec.deterministic = true;
  config.seed = 7;
  return config;
}

double DownstreamAccuracy(const LevaPipeline& p, const Table& base,
                          const std::string& target, TargetEncoder* encoder) {
  const MLDataset ds = bench::CheckOk(
      p.Featurize(base, target, *encoder, /*rows_in_graph=*/true),
      "featurize");
  ElasticNetOptions opts;
  opts.epochs = 60;
  LogisticRegressor model(encoder->num_classes(), opts);
  Rng rng(17);
  bench::CheckOk(model.Fit(ds.x, ds.y, &rng), "probe fit");
  return Accuracy(ds.y, model.Predict(ds.x));
}

void Run() {
  auto ds = bench::CheckOk(GenerateStudent(kStudents, 0, 3), "generate");
  const Table* full_base = ds.db.FindTable(ds.base_table);
  Database fit_db = ds.db;
  const size_t base_idx =
      bench::CheckOk(fit_db.TableIndex(ds.base_table), "base index");
  fit_db.mutable_tables()[base_idx] = SliceRows(*full_base, 0, kFitRows);
  const Table batch = SliceRows(*full_base, kFitRows, kStudents);
  TargetEncoder encoder;
  bench::CheckOk(
      encoder.Fit(*full_base->FindColumn(ds.target_column), true),
      "encoder");

  std::printf("== Streaming update vs full re-fit (%zu base rows, %zu-row "
              "batch = %.1f%%) ==\n",
              kStudents, kBatchRows, 100.0 * kBatchRows / kStudents);
  std::printf("%-10s%-12s%-12s%-10s%-12s%-12s%-10s%s\n", "method", "refit_ms",
              "update_ms", "speedup", "refit_acc", "update_acc", "delta",
              "mode");

  for (const EmbeddingMethod method : {EmbeddingMethod::kRandomWalk,
                                       EmbeddingMethod::kMatrixFactorization}) {
    // Incremental path: fit on the truncated table (untimed), then stream
    // the batch in through the durable Update.
    LevaPipeline incremental(BenchConfig(method));
    bench::CheckOk(incremental.Fit(fit_db), "fit base");
    const std::string wal_path =
        std::string(std::getenv("TMPDIR") ? std::getenv("TMPDIR") : "/tmp") +
        "/leva_bench_streaming_update.wal";
    Env::Default()->DeleteFile(wal_path);
    auto wal = bench::CheckOk(UpdateLog::Open(wal_path), "open wal");
    WallTimer update_timer;
    const UpdateResult res =
        bench::CheckOk(incremental.Update(batch, wal.get()), "update");
    const double update_ms = update_timer.ElapsedMillis();
    bench::CheckOk(wal->Close(), "close wal");

    // Full re-fit on the grown database.
    LevaPipeline refit(BenchConfig(method));
    WallTimer refit_timer;
    bench::CheckOk(refit.Fit(ds.db), "refit");
    const double refit_ms = refit_timer.ElapsedMillis();

    const double acc_refit =
        DownstreamAccuracy(refit, *full_base, ds.target_column, &encoder);
    const double acc_update =
        DownstreamAccuracy(incremental, *full_base, ds.target_column,
                           &encoder);
    std::printf("%-10s%-12.1f%-12.1f%-10.1f%-12.3f%-12.3f%-10.3f%s\n",
                method == EmbeddingMethod::kRandomWalk ? "RW" : "MF",
                refit_ms, update_ms, refit_ms / update_ms, acc_refit,
                acc_update, acc_update - acc_refit,
                res.full_refit ? "full-refit" : "warm");
    Env::Default()->DeleteFile(wal_path);
  }
}

}  // namespace
}  // namespace leva

int main() {
  leva::Run();
  return 0;
}
