#ifndef LEVA_BENCH_BENCH_UTIL_H_
#define LEVA_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace leva::bench {

/// Nearest-rank percentile of an ascending-`sorted` sample: element at index
/// floor(n * pct / 100), clamped to the last element. pct in [0, 100].
/// Returns 0 for an empty sample. Shared by the paper-table benches, the
/// serving load generator, and the serving daemon's STATS percentiles.
inline double Percentile(const std::vector<double>& sorted, size_t pct) {
  if (sorted.empty()) return 0.0;
  return sorted[std::min(sorted.size() - 1, sorted.size() * pct / 100)];
}

/// The standard latency cut of a sample (p50/p90/p95/p99), computed on one
/// sort of a by-value copy.
struct LatencySummary {
  size_t count = 0;
  double p50 = 0;
  double p90 = 0;
  double p95 = 0;
  double p99 = 0;
};

inline LatencySummary SummarizeLatencies(std::vector<double> values) {
  LatencySummary out;
  out.count = values.size();
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  out.p50 = Percentile(values, 50);
  out.p90 = Percentile(values, 90);
  out.p95 = Percentile(values, 95);
  out.p99 = Percentile(values, 99);
  return out;
}

/// Aborts with a message on error; benchmark harnesses have no recovery path.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Fixed-width table printer for paper-style result tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int width = 12)
      : headers_(std::move(headers)), width_(width) {}

  void PrintHeader() const {
    for (const std::string& h : headers_) {
      std::printf("%-*s", width_, h.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < headers_.size(); ++i) {
      for (int j = 0; j < width_ - 2; ++j) std::printf("-");
      std::printf("  ");
    }
    std::printf("\n");
  }

  void PrintRow(const std::string& label, const std::vector<double>& values,
                int precision = 3) const {
    std::printf("%-*s", width_, label.c_str());
    for (const double v : values) {
      std::printf("%-*.*f", width_, precision, v);
    }
    std::printf("\n");
  }

  void PrintStringRow(const std::vector<std::string>& cells) const {
    for (const std::string& c : cells) {
      std::printf("%-*s", width_, c.c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  int width_;
};

}  // namespace leva::bench

#endif  // LEVA_BENCH_BENCH_UTIL_H_
