#ifndef LEVA_BENCH_BENCH_UTIL_H_
#define LEVA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace leva::bench {

/// Aborts with a message on error; benchmark harnesses have no recovery path.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Fixed-width table printer for paper-style result tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int width = 12)
      : headers_(std::move(headers)), width_(width) {}

  void PrintHeader() const {
    for (const std::string& h : headers_) {
      std::printf("%-*s", width_, h.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < headers_.size(); ++i) {
      for (int j = 0; j < width_ - 2; ++j) std::printf("-");
      std::printf("  ");
    }
    std::printf("\n");
  }

  void PrintRow(const std::string& label, const std::vector<double>& values,
                int precision = 3) const {
    std::printf("%-*s", width_, label.c_str());
    for (const double v : values) {
      std::printf("%-*.*f", width_, precision, v);
    }
    std::printf("\n");
  }

  void PrintStringRow(const std::vector<std::string>& cells) const {
    for (const std::string& c : cells) {
      std::printf("%-*s", width_, c.c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  int width_;
};

}  // namespace leva::bench

#endif  // LEVA_BENCH_BENCH_UTIL_H_
