// Reproduces Fig. 7a: runtime and memory of embedding construction as the
// dataset is replicated K times (rows and distinct tokens both grow linearly
// in K). Compares EmbDI, Leva-RW and Leva-MF.
//
// Expected shape: random-walk methods (EmbDI, Leva-RW) are roughly an order
// of magnitude slower than Leva-MF; RW uses less memory than MF.
#include <cstdio>

#include "baselines/graph_models.h"
#include "baselines/experiment.h"
#include "baselines/leva_model.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "datagen/datasets.h"
#include "embed/mf.h"

namespace leva {
namespace {

struct RunCost {
  double seconds = 0;
  double model_mb = 0;  // modeled working-set memory
};

RunCost RunLeva(EmbeddingMethod method, const Database& db) {
  WallTimer timer;
  LevaModel model(FastLevaConfig(method, 42, 64));
  bench::CheckOk(model.Fit(db), "fit");
  RunCost cost;
  cost.seconds = timer.ElapsedSeconds();
  const LevaGraph& g = model.pipeline().graph();
  const size_t bytes =
      method == EmbeddingMethod::kMatrixFactorization
          ? EstimateMfMemoryBytes(g.NumNodes(), g.NumEdges(), 64)
          : EstimateRwMemoryBytes(g.NumNodes(), g.NumEdges(), 20, 5, true);
  cost.model_mb = static_cast<double>(bytes) / (1024.0 * 1024.0);
  return cost;
}

RunCost RunEmbdi(const Database& db) {
  WallTimer timer;
  Word2VecOptions w2v;
  w2v.dim = 64;
  w2v.epochs = 2;
  EmbdiModel model(false, w2v, {}, 42);
  bench::CheckOk(model.Fit(db), "fit embdi");
  RunCost cost;
  cost.seconds = timer.ElapsedSeconds();
  const LevaGraph& g = model.graph();
  cost.model_mb = static_cast<double>(EstimateRwMemoryBytes(
                      g.NumNodes(), g.NumEdges(), 20, 5, false)) /
                  (1024.0 * 1024.0);
  return cost;
}

void Run() {
  std::printf("== Fig. 7a: scalability vs replication factor K ==\n");
  std::printf("%-6s%-10s%-12s%-12s%-12s%-12s%-12s%-12s\n", "K", "rows",
              "embdi-s", "rw-s", "mf-s", "embdi-MB", "rw-MB", "mf-MB");

  auto base = bench::CheckOk(GenerateSynthetic(ScalabilityBaseConfig()),
                             "generate");
  for (const size_t k : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const auto db = bench::CheckOk(ReplicateDatabase(base.db, k), "replicate");
    const RunCost embdi = RunEmbdi(db);
    const RunCost rw = RunLeva(EmbeddingMethod::kRandomWalk, db);
    const RunCost mf = RunLeva(EmbeddingMethod::kMatrixFactorization, db);
    std::printf("%-6zu%-10zu%-12.2f%-12.2f%-12.2f%-12.2f%-12.2f%-12.2f\n", k,
                db.TotalRows(), embdi.seconds, rw.seconds, mf.seconds,
                embdi.model_mb, rw.model_mb, mf.model_mb);
  }
  std::printf("\n(paper Fig. 7a: walk-based methods are ~an order of "
              "magnitude slower than MF; RW needs less memory than MF)\n");
}

}  // namespace
}  // namespace leva

int main() {
  leva::Run();
  return 0;
}
