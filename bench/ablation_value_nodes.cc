// Design-decision ablation (DESIGN.md): value nodes vs pairwise row-row
// edges. Section 3.1 argues value nodes reduce the edge count from O(MN^2)
// to O(MN) while preserving the similarity structure. This bench builds both
// graphs from the same textified tables and compares size, construction
// time, embedding time, and downstream accuracy.
#include <cstdio>
#include <unordered_map>

#include "baselines/experiment.h"
#include "baselines/leva_model.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "datagen/datasets.h"
#include "embed/mf.h"
#include "la/decomp.h"
#include "ml/metrics.h"
#include "ml/tree.h"

namespace leva {
namespace {

// The O(MN^2) alternative: connect every pair of rows that share a token.
LevaGraph BuildPairwiseGraph(const std::vector<TextifiedTable>& tables) {
  GraphBuilder builder;
  std::unordered_map<std::string, std::vector<NodeId>> token_rows;
  for (const TextifiedTable& t : tables) {
    const NodeId first = builder.AddNode(NodeKind::kRow, t.table_name + ":0");
    for (size_t r = 1; r < t.rows.size(); ++r) {
      builder.AddNode(NodeKind::kRow, t.table_name + ":" + std::to_string(r));
    }
    builder.RegisterTableRows(t.table_name, first, t.rows.size());
    for (size_t r = 0; r < t.rows.size(); ++r) {
      for (const TextToken& tok : t.rows[r]) {
        token_rows[tok.token].push_back(first + static_cast<NodeId>(r));
      }
    }
  }
  for (const auto& [token, rows] : token_rows) {
    // Cap hub tokens so the quadratic blowup stays runnable; the paper's
    // point is precisely that this blowup is why value nodes exist.
    const size_t limit = std::min<size_t>(rows.size(), 120);
    for (size_t i = 0; i < limit; ++i) {
      for (size_t j = i + 1; j < limit; ++j) {
        if (rows[i] != rows[j]) (void)builder.AddEdge(rows[i], rows[j]);
      }
    }
  }
  return std::move(builder).Build();
}

void Run() {
  std::printf("== Ablation: value nodes vs pairwise row-row edges ==\n");
  std::printf("%-12s%-14s%-10s%-12s%-12s%-12s%-10s\n", "graph", "nodes",
              "edges", "build-s", "embed-s", "accuracy", "");

  auto config = bench::CheckOk(DatasetConfigByName("ftp"), "config");
  auto data = bench::CheckOk(GenerateSynthetic(config), "generate");
  auto task = bench::CheckOk(PrepareTask(std::move(data), 0.25, 91),
                             "prepare");

  // Shared textification.
  TextifyOptions textify_options;
  textify_options.bin_count = 20;
  Textifier textifier(textify_options);
  bench::CheckOk(textifier.Fit(task.fit_db), "textify");
  std::vector<TextifiedTable> textified;
  for (const Table& t : task.fit_db.tables()) {
    textified.push_back(bench::CheckOk(textifier.Transform(t), "transform"));
  }

  auto evaluate = [&](const LevaGraph& graph) {
    Rng rng(3);
    MfOptions mf;
    mf.dim = 64;
    WallTimer timer;
    const Matrix vectors =
        bench::CheckOk(MatrixFactorizationEmbed(graph, mf, &rng), "embed");
    const double embed_seconds = timer.ElapsedSeconds();
    // Featurize base rows straight from row-node vectors.
    const Table* base = task.data.db.FindTable("base");
    MLDataset ds;
    ds.classification = true;
    ds.num_classes = task.encoder.num_classes();
    ds.x = Matrix(base->NumRows(), vectors.cols());
    ds.y.resize(base->NumRows());
    const size_t target = *base->ColumnIndex("target");
    for (size_t r = 0; r < base->NumRows(); ++r) {
      const NodeId node = graph.RowNode("base", r);
      for (size_t j = 0; j < vectors.cols(); ++j) {
        ds.x(r, j) = node == kInvalidNode ? 0.0 : vectors(node, j);
      }
      ds.y[r] = bench::CheckOk(task.encoder.Encode(base->at(r, target)),
                               "encode");
    }
    MLDataset train = ds.Subset(task.train_rows);
    MLDataset test = ds.Subset(task.test_rows);
    ForestOptions forest_options;
    forest_options.num_trees = 40;
    forest_options.tree.num_classes = ds.num_classes;
    RandomForest forest(forest_options);
    bench::CheckOk(forest.Fit(train.x, train.y, &rng), "forest");
    return std::make_pair(embed_seconds,
                          Accuracy(test.y, forest.Predict(test.x)));
  };

  {
    WallTimer timer;
    const LevaGraph value_graph = bench::CheckOk(
        BuildGraph(textified, textifier.NumAttributes()), "value graph");
    const double build_s = timer.ElapsedSeconds();
    const auto [embed_s, acc] = evaluate(value_graph);
    std::printf("%-12s%-14zu%-10zu%-12.3f%-12.3f%-12.3f\n", "value-node",
                value_graph.NumNodes(), value_graph.NumEdges(), build_s,
                embed_s, acc);
  }
  {
    WallTimer timer;
    const LevaGraph pairwise = BuildPairwiseGraph(textified);
    const double build_s = timer.ElapsedSeconds();
    const auto [embed_s, acc] = evaluate(pairwise);
    std::printf("%-12s%-14zu%-10zu%-12.3f%-12.3f%-12.3f\n", "pairwise",
                pairwise.NumNodes(), pairwise.NumEdges(), build_s, embed_s,
                acc);
  }
  std::printf("\n(Section 3.1: value nodes trade a few extra nodes for a "
              "much smaller edge set at comparable downstream quality)\n");
}

}  // namespace
}  // namespace leva

int main() {
  leva::Run();
  return 0;
}
