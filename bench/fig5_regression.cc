// Reproduces Fig. 5: regression MAE (lower is better) of Base / Full /
// Full+FE / Disc / Emb-MF / Emb-RW on the two regression datasets, per
// downstream model (linear regression, ElasticNet, 2-layer NN).
#include <cstdio>

#include "baselines/experiment.h"
#include "baselines/leva_model.h"
#include "bench/bench_util.h"
#include "datagen/datasets.h"

namespace leva {
namespace {

void Run() {
  const std::vector<std::string> datasets = {"restbase", "bio"};
  const std::vector<ModelKind> models = {ModelKind::kLinear,
                                         ModelKind::kElasticNet,
                                         ModelKind::kMlp};

  for (const std::string& name : datasets) {
    std::printf("\n== Fig. 5 (%s): regression MAE (lower is better) ==\n",
                name.c_str());
    bench::TablePrinter table(
        {"model", "Base", "Full", "Full+FE", "Disc", "Emb-MF", "Emb-RW"});
    table.PrintHeader();
    auto config = bench::CheckOk(DatasetConfigByName(name), "config");
    auto data = bench::CheckOk(GenerateSynthetic(config), "generate");
    auto task =
        bench::CheckOk(PrepareTask(std::move(data), 0.25, 98), "prepare");

    // Fit each embedding once and reuse features across models.
    LevaModel mf(FastLevaConfig(EmbeddingMethod::kMatrixFactorization));
    bench::CheckOk(mf.Fit(task.fit_db), "fit mf");
    const auto mf_data = bench::CheckOk(FeaturizeTask(mf, task), "feat mf");
    LevaModel rw(FastLevaConfig(EmbeddingMethod::kRandomWalk));
    bench::CheckOk(rw.Fit(task.fit_db), "fit rw");
    const auto rw_data = bench::CheckOk(FeaturizeTask(rw, task), "feat rw");

    for (const ModelKind model : models) {
      const double base = bench::CheckOk(
          EvaluateTabularBaseline(task, TabularBaseline::kBase, 0, model, 1),
          "base");
      const double full = bench::CheckOk(
          EvaluateTabularBaseline(task, TabularBaseline::kFull, 0, model, 1),
          "full");
      const double full_fe = bench::CheckOk(
          EvaluateTabularBaseline(task, TabularBaseline::kFull, 20, model, 1),
          "full+fe");
      const double disc = bench::CheckOk(
          EvaluateTabularBaseline(task, TabularBaseline::kDisc, 0, model, 1),
          "disc");
      const double emb_mf = bench::CheckOk(
          TrainAndScore(model, mf_data.first, mf_data.second, 1), "mf");
      const double emb_rw = bench::CheckOk(
          TrainAndScore(model, rw_data.first, rw_data.second, 1), "rw");
      table.PrintRow(ModelKindName(model),
                     {base, full, full_fe, disc, emb_mf, emb_rw});
    }
  }
}

}  // namespace
}  // namespace leva

int main() {
  leva::Run();
  return 0;
}
