// Extension ablation: the embedding-construction stage is plug'n'play
// (Section 4.2). Compares Leva's two built-in methods (MF, RW) with the
// LINE-style edge-sampling plug-in on accuracy and fit time.
#include <cstdio>

#include "baselines/experiment.h"
#include "baselines/leva_model.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "datagen/datasets.h"

namespace leva {
namespace {

void Run() {
  std::printf("== Ablation: embedding-method plug-ins (accuracy / fit "
              "seconds, random forest downstream) ==\n");
  bench::TablePrinter table({"dataset", "MF", "MF-s", "RW", "RW-s", "LINE",
                             "LINE-s"});
  table.PrintHeader();

  for (const std::string name : {"ftp", "genes"}) {
    auto config = bench::CheckOk(DatasetConfigByName(name), "config");
    auto data = bench::CheckOk(GenerateSynthetic(config), "generate");
    auto task =
        bench::CheckOk(PrepareTask(std::move(data), 0.25, 93), "prepare");

    std::vector<double> row;
    for (const EmbeddingMethod method :
         {EmbeddingMethod::kMatrixFactorization, EmbeddingMethod::kRandomWalk,
          EmbeddingMethod::kLine}) {
      LevaModel model(FastLevaConfig(method));
      WallTimer timer;
      bench::CheckOk(model.Fit(task.fit_db), "fit");
      const double fit_seconds = timer.ElapsedSeconds();
      const auto datasets = bench::CheckOk(FeaturizeTask(model, task), "feat");
      const double acc = bench::CheckOk(
          TrainAndScore(ModelKind::kRandomForest, datasets.first,
                        datasets.second, 1),
          "score");
      row.push_back(acc);
      row.push_back(fit_seconds);
    }
    table.PrintRow(name, row);
  }
  std::printf("\n(new embedding methods drop into the pipeline without "
              "touching textification, graph construction or deployment)\n");
}

}  // namespace
}  // namespace leva

int main() {
  leva::Run();
  return 0;
}
