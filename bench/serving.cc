// Zero-copy serving benchmark: snapshot-load latency and post-load resident
// memory, heap copy vs mmap (eager page verification) vs mmap (lazy).
//
// Each load mode runs in a forked child so one process's page cache / heap
// does not pollute the next mode's RSS reading; the child reports its
// numbers (plus a CRC of its Featurize output, proving all three modes serve
// the same function) over a pipe. The parent prints the EXPERIMENTS.md
// table.
//
// Expected shape: a lazy mmap load is orders of magnitude faster than a heap
// load (it parses the manifest and inline sections but touches no bulk
// pages), eager mmap sits between (it CRCs every page but never copies), and
// the mmap modes grow RSS by less than the heap mode, which materializes a
// second copy of every bulk array.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/io.h"
#include "core/pipeline.h"
#include "datagen/synthetic.h"
#include "ml/featurize.h"

namespace leva {
namespace {

constexpr size_t kStudents = 2000;
constexpr size_t kDim = 256;
constexpr int kLoadRepeats = 5;

struct ModeReport {
  double load_secs = 0;        // best of kLoadRepeats
  double rss_before_mib = 0;   // just before the measured load
  double rss_after_mib = 0;    // after load + one Featurize
  uint32_t featurize_crc = 0;  // CRC32C of the featurized matrix bytes
};

struct Mode {
  const char* name;
  bool use_mmap;
  bool verify_pages;
};

constexpr Mode kModes[] = {
    {"heap", false, true},
    {"mmap eager", true, true},
    {"mmap lazy", true, false},
};

double Secs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Runs one load mode start-to-finish; called inside the forked child.
ModeReport MeasureMode(const std::string& path, const Mode& mode,
                       const SyntheticDataset& ds,
                       const TargetEncoder& encoder) {
  SnapshotLoadOptions opts;
  opts.use_mmap = mode.use_mmap;
  opts.verify_pages = mode.verify_pages;

  ModeReport r;
  r.rss_before_mib = CurrentRssBytes() / (1024.0 * 1024.0);
  r.load_secs = 1e30;
  LevaPipeline p;
  for (int i = 0; i < kLoadRepeats; ++i) {
    LevaPipeline fresh;
    const auto t0 = std::chrono::steady_clock::now();
    bench::CheckOk(fresh.LoadSnapshot(path, nullptr, opts), mode.name);
    const double s = Secs(t0);
    if (s < r.load_secs) r.load_secs = s;
    p = std::move(fresh);
  }

  const Table* base = ds.db.FindTable(ds.base_table);
  auto features =
      bench::CheckOk(p.Featurize(*base, ds.target_column, encoder,
                                 /*rows_in_graph=*/true),
                     "featurize");
  r.featurize_crc =
      Crc32c(features.x.data().data(),
             features.x.data().size() * sizeof(double));
  r.rss_after_mib = CurrentRssBytes() / (1024.0 * 1024.0);
  return r;
}

// Forks, measures `mode` in the child, and ships the report back via pipe.
ModeReport MeasureInChild(const std::string& path, const Mode& mode,
                          const SyntheticDataset& ds,
                          const TargetEncoder& encoder) {
  int fds[2];
  if (::pipe(fds) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    ::close(fds[0]);
    const ModeReport r = MeasureMode(path, mode, ds, encoder);
    const ssize_t n = ::write(fds[1], &r, sizeof(r));
    ::close(fds[1]);
    ::_exit(n == sizeof(r) ? 0 : 1);
  }
  ::close(fds[1]);
  ModeReport r;
  const ssize_t n = ::read(fds[0], &r, sizeof(r));
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (n != sizeof(r) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "FATAL: child for mode '%s' failed\n", mode.name);
    std::exit(1);
  }
  return r;
}

void Run() {
  std::printf("== Zero-copy serving: snapshot load latency and RSS "
              "(bench/serving) ==\n");
  auto ds = bench::CheckOk(GenerateStudent(kStudents, 0, 3), "generate");
  LevaConfig config;
  config.method = EmbeddingMethod::kMatrixFactorization;
  config.embedding_dim = kDim;
  config.seed = 5;
  LevaPipeline fitted(config);
  const auto t_fit = std::chrono::steady_clock::now();
  bench::CheckOk(fitted.Fit(ds.db), "fit");
  std::printf("model: %zu students, dim %zu, %zu vectors, fit %.1fs\n",
              kStudents, kDim, fitted.embedding().size(), Secs(t_fit));

  const std::string path =
      "/tmp/leva_serving_bench_" + std::to_string(::getpid()) + ".leva";
  bench::CheckOk(fitted.SaveSnapshot(path), "save");
  size_t file_bytes = 0;
  {
    auto bytes = bench::CheckOk(Env::Default()->ReadFileToString(path),
                                "stat snapshot");
    file_bytes = bytes.size();
  }
  std::printf("snapshot: %.1f MiB at %s\n\n", file_bytes / (1024.0 * 1024.0),
              path.c_str());

  const Table* base = ds.db.FindTable(ds.base_table);
  TargetEncoder encoder;
  bench::CheckOk(encoder.Fit(*base->FindColumn(ds.target_column), false),
                 "target");

  std::vector<ModeReport> reports;
  for (const Mode& mode : kModes) {
    reports.push_back(MeasureInChild(path, mode, ds, encoder));
  }

  bench::TablePrinter table(
      {"mode", "load (ms)", "vs heap", "rss delta (MiB)", "featurize crc"},
      17);
  table.PrintHeader();
  const double heap_secs = reports[0].load_secs;
  for (size_t i = 0; i < reports.size(); ++i) {
    const ModeReport& r = reports[i];
    char load[32], speedup[32], rss[32], crc[32];
    std::snprintf(load, sizeof(load), "%.3f", r.load_secs * 1e3);
    std::snprintf(speedup, sizeof(speedup), "%.1fx", heap_secs / r.load_secs);
    std::snprintf(rss, sizeof(rss), "%.1f",
                  r.rss_after_mib - r.rss_before_mib);
    std::snprintf(crc, sizeof(crc), "%08x", r.featurize_crc);
    table.PrintStringRow({kModes[i].name, load, speedup, rss, crc});
  }

  bool identical = true;
  for (const ModeReport& r : reports) {
    identical = identical && r.featurize_crc == reports[0].featurize_crc;
  }
  std::printf("\nall modes serve bit-identical features: %s\n",
              identical ? "yes" : "NO — BUG");
  (void)Env::Default()->DeleteFile(path);
  if (!identical) std::exit(1);
}

}  // namespace
}  // namespace leva

int main() {
  leva::Run();
  return 0;
}
