// Quantized zero-copy serving benchmark: snapshot footprint, load latency,
// post-load resident memory, and featurize bandwidth across the storage-tier
// x load-mode matrix — {fp64, bf16, int8} x {heap, mmap eager, mmap lazy}.
//
// Each (tier, mode) cell runs in a forked child so one process's page cache /
// heap does not pollute the next cell's RSS reading; the child reports its
// numbers (plus a CRC of its Featurize output, proving every load mode of a
// tier serves the same function) over a pipe. The parent prints the
// EXPERIMENTS.md tables.
//
// Expected shape: int8 shrinks the snapshot and the heap-load RSS delta by
// >= 3.5x vs fp64 (dim >> 4 makes the embedding dominate both), every tier's
// lazy mmap load is near O(1), and featurize bandwidth — GiB/s of embedding
// bytes actually touched by the gather — drops with bytes/row while rows/sec
// holds, which is the entire point of serving quantized.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/io.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "datagen/synthetic.h"
#include "ml/featurize.h"
#include "ml/linear.h"
#include "ml/metrics.h"

namespace leva {
namespace {

constexpr size_t kStudents = 2000;
constexpr size_t kDim = 256;
constexpr int kLoadRepeats = 5;
constexpr int kFeaturizeRepeats = 3;

struct ModeReport {
  double load_secs = 0;        // best of kLoadRepeats
  double rss_before_mib = 0;   // just before the measured load
  double rss_after_mib = 0;    // after load + one Featurize
  double featurize_secs = 0;   // best of kFeaturizeRepeats
  uint64_t bytes_touched = 0;  // embedding bytes the gather read per pass
  uint64_t rows = 0;           // featurized rows per pass
  uint32_t featurize_crc = 0;  // CRC32C of the featurized matrix bytes
};

struct Mode {
  const char* name;
  bool use_mmap;
  bool verify_pages;
};

constexpr Mode kModes[] = {
    {"heap", false, true},
    {"mmap eager", true, true},
    {"mmap lazy", true, false},
};

constexpr StorageTier kTiers[] = {StorageTier::kFp64, StorageTier::kBf16,
                                  StorageTier::kInt8};

double Secs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Runs one (tier snapshot, load mode) cell start-to-finish; called inside
// the forked child.
ModeReport MeasureMode(const std::string& path, const Mode& mode,
                       const SyntheticDataset& ds,
                       const TargetEncoder& encoder) {
  SnapshotLoadOptions opts;
  opts.use_mmap = mode.use_mmap;
  opts.verify_pages = mode.verify_pages;

  ModeReport r;
  r.rss_before_mib = CurrentRssBytes() / (1024.0 * 1024.0);
  r.load_secs = 1e30;
  LevaPipeline p;
  for (int i = 0; i < kLoadRepeats; ++i) {
    LevaPipeline fresh;
    const auto t0 = std::chrono::steady_clock::now();
    bench::CheckOk(fresh.LoadSnapshot(path, nullptr, opts), mode.name);
    const double s = Secs(t0);
    if (s < r.load_secs) r.load_secs = s;
    p = std::move(fresh);
  }

  const Table* base = ds.db.FindTable(ds.base_table);
  r.featurize_secs = 1e30;
  for (int i = 0; i < kFeaturizeRepeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    auto features =
        bench::CheckOk(p.Featurize(*base, ds.target_column, encoder,
                                   /*rows_in_graph=*/true),
                       "featurize");
    const double s = Secs(t0);
    if (s < r.featurize_secs) r.featurize_secs = s;
    if (i == 0) {
      r.featurize_crc =
          Crc32c(features.x.data().data(),
                 features.x.data().size() * sizeof(double));
    }
  }
  // Embedding bytes the serving pass actually read at this tier: one row of
  // storage per token occurrence gathered, plus one per in-graph row vector
  // copied out of the store.
  const FeaturizeStats& fs = p.featurize_stats();
  r.bytes_touched = static_cast<uint64_t>(fs.token_occurrences + fs.rows) *
                    p.embedding().bytes_per_row();
  r.rows = fs.rows;
  r.rss_after_mib = CurrentRssBytes() / (1024.0 * 1024.0);
  return r;
}

// Forks, measures `mode` in the child, and ships the report back via pipe.
ModeReport MeasureInChild(const std::string& path, const Mode& mode,
                          const SyntheticDataset& ds,
                          const TargetEncoder& encoder) {
  int fds[2];
  if (::pipe(fds) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    ::close(fds[0]);
    const ModeReport r = MeasureMode(path, mode, ds, encoder);
    const ssize_t n = ::write(fds[1], &r, sizeof(r));
    ::close(fds[1]);
    ::_exit(n == sizeof(r) ? 0 : 1);
  }
  ::close(fds[1]);
  ModeReport r;
  const ssize_t n = ::read(fds[0], &r, sizeof(r));
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (n != sizeof(r) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "FATAL: child for mode '%s' failed\n", mode.name);
    std::exit(1);
  }
  return r;
}

// Downstream quality of one tier: train the paper's regressor on the
// tier-served features and score it on the same rows (the deltas between
// tiers are what matters, not the absolute fit).
double DownstreamR2(const std::string& path, const SyntheticDataset& ds,
                    const TargetEncoder& encoder) {
  LevaPipeline p;
  bench::CheckOk(p.LoadSnapshot(path), "r2 load");
  const Table* base = ds.db.FindTable(ds.base_table);
  auto features = bench::CheckOk(
      p.Featurize(*base, ds.target_column, encoder, /*rows_in_graph=*/true),
      "r2 featurize");
  ElasticNetOptions opts;
  opts.epochs = 40;
  LinearRegressor model(opts);
  Rng rng(17);
  bench::CheckOk(model.Fit(features.x, features.y, &rng), "r2 fit");
  return R2Score(features.y, model.Predict(features.x));
}

void Run() {
  std::printf("== Quantized zero-copy serving: footprint, load latency, RSS, "
              "featurize bandwidth (bench/serving) ==\n");
  auto ds = bench::CheckOk(GenerateStudent(kStudents, 0, 3), "generate");
  LevaConfig config;
  config.method = EmbeddingMethod::kMatrixFactorization;
  config.embedding_dim = kDim;
  config.seed = 5;
  LevaPipeline fitted(config);
  const auto t_fit = std::chrono::steady_clock::now();
  bench::CheckOk(fitted.Fit(ds.db), "fit");
  std::printf("model: %zu students, dim %zu, %zu vectors, fit %.1fs\n",
              kStudents, kDim, fitted.embedding().size(), Secs(t_fit));

  const Table* base = ds.db.FindTable(ds.base_table);
  TargetEncoder encoder;
  bench::CheckOk(encoder.Fit(*base->FindColumn(ds.target_column), false),
                 "target");

  // One snapshot per tier, quantized at save time from the same fitted model.
  std::string paths[3];
  size_t file_bytes[3] = {0, 0, 0};
  double r2[3] = {0, 0, 0};
  for (size_t t = 0; t < 3; ++t) {
    paths[t] = "/tmp/leva_serving_bench_" + std::to_string(::getpid()) + "_" +
               StorageTierName(kTiers[t]) + ".leva";
    bench::CheckOk(fitted.SaveSnapshot(paths[t], kTiers[t]), "save");
    auto bytes = bench::CheckOk(Env::Default()->ReadFileToString(paths[t]),
                                "stat snapshot");
    file_bytes[t] = bytes.size();
    r2[t] = DownstreamR2(paths[t], ds, encoder);
  }

  std::printf("\n-- snapshot footprint and downstream quality per tier --\n");
  bench::TablePrinter footprint(
      {"tier", "file (MiB)", "vs fp64", "bytes/row", "downstream R2"}, 15);
  footprint.PrintHeader();
  for (size_t t = 0; t < 3; ++t) {
    LevaPipeline probe;
    bench::CheckOk(probe.LoadSnapshot(paths[t]), "probe");
    char mib[32], ratio[32], bpr[32], r2s[32];
    std::snprintf(mib, sizeof(mib), "%.2f", file_bytes[t] / (1024.0 * 1024.0));
    std::snprintf(ratio, sizeof(ratio), "%.2fx",
                  static_cast<double>(file_bytes[0]) /
                      static_cast<double>(file_bytes[t]));
    std::snprintf(bpr, sizeof(bpr), "%zu", probe.embedding().bytes_per_row());
    std::snprintf(r2s, sizeof(r2s), "%.4f", r2[t]);
    footprint.PrintStringRow(
        {StorageTierName(kTiers[t]), mib, ratio, bpr, r2s});
  }

  std::printf("\n-- load latency, RSS, and featurize bandwidth per "
              "(tier, mode) --\n");
  bench::TablePrinter table({"tier", "mode", "load (ms)", "rss delta (MiB)",
                             "featurize (ms)", "feat GiB/s", "crc"},
                            17);
  table.PrintHeader();
  double heap_rss_delta[3] = {0, 0, 0};
  bool identical = true;
  for (size_t t = 0; t < 3; ++t) {
    uint32_t tier_crc = 0;
    for (size_t m = 0; m < 3; ++m) {
      const ModeReport r = MeasureInChild(paths[t], kModes[m], ds, encoder);
      if (m == 0) {
        heap_rss_delta[t] = r.rss_after_mib - r.rss_before_mib;
        tier_crc = r.featurize_crc;
      }
      identical = identical && r.featurize_crc == tier_crc;
      char load[32], rss[32], feat[32], bw[32], crc[32];
      std::snprintf(load, sizeof(load), "%.3f", r.load_secs * 1e3);
      std::snprintf(rss, sizeof(rss), "%.1f",
                    r.rss_after_mib - r.rss_before_mib);
      std::snprintf(feat, sizeof(feat), "%.2f", r.featurize_secs * 1e3);
      std::snprintf(bw, sizeof(bw), "%.3f",
                    static_cast<double>(r.bytes_touched) /
                        r.featurize_secs / (1024.0 * 1024.0 * 1024.0));
      std::snprintf(crc, sizeof(crc), "%08x", r.featurize_crc);
      table.PrintStringRow(
          {StorageTierName(kTiers[t]), kModes[m].name, load, rss, feat, bw,
           crc});
    }
  }

  const double size_ratio = static_cast<double>(file_bytes[0]) /
                            static_cast<double>(file_bytes[2]);
  const double rss_ratio =
      heap_rss_delta[2] > 0 ? heap_rss_delta[0] / heap_rss_delta[2] : 0.0;
  std::printf("\nint8 vs fp64: snapshot %.2fx smaller, heap-load RSS delta "
              "%.2fx smaller (budget: >= 3.5x)\n",
              size_ratio, rss_ratio);
  std::printf("every mode within a tier serves bit-identical features: %s\n",
              identical ? "yes" : "NO — BUG");
  std::printf("downstream R2 delta vs fp64: bf16 %+.5f, int8 %+.5f\n",
              r2[1] - r2[0], r2[2] - r2[0]);
  for (const std::string& p : paths) (void)Env::Default()->DeleteFile(p);
  if (!identical || size_ratio < 3.5) std::exit(1);
}

}  // namespace
}  // namespace leva

int main() {
  leva::Run();
  return 0;
}
