// Reproduces Table 5: classification accuracy of different embedding
// construction methods on three datasets. Word2Vec embeds the textified rows
// directly; Node2Vec embeds the raw (unrefined, unweighted) syntactic graph;
// EmbDI uses a tripartite cell-row-column graph; DeepER composes IDF-weighted
// token vectors; Emb-MF / Emb-RW are Leva's two methods.
//
// Expected shape: graph methods > sequential Word2Vec; Leva's refined graph >
// all baselines.
#include <cstdio>

#include "baselines/corpus_models.h"
#include "baselines/experiment.h"
#include "baselines/graph_models.h"
#include "baselines/leva_model.h"
#include "bench/bench_util.h"
#include "datagen/datasets.h"

namespace leva {
namespace {

void Run() {
  std::printf("== Table 5: classification accuracy by embedding method "
              "(random forest downstream) ==\n");
  bench::TablePrinter table({"dataset", "Word2Vec", "Node2Vec", "EmbDI",
                             "DeepER", "Emb-MF", "Emb-RW"});
  table.PrintHeader();

  Word2VecOptions w2v;
  w2v.dim = 64;
  w2v.epochs = 2;

  for (const std::string name : {"genes", "financial", "ftp"}) {
    auto config = bench::CheckOk(DatasetConfigByName(name), "config");
    auto data = bench::CheckOk(GenerateSynthetic(config), "generate");
    auto task =
        bench::CheckOk(PrepareTask(std::move(data), 0.25, 55), "prepare");
    const ModelKind model = ModelKind::kRandomForest;

    DirectWord2VecModel word2vec(w2v, {}, 3);
    Node2VecModel node2vec(1.0, 0.5, w2v, {}, 3);
    EmbdiModel embdi(false, w2v, {}, 3);
    DeeperModel deeper(w2v, {}, 3);
    LevaModel mf(FastLevaConfig(EmbeddingMethod::kMatrixFactorization, 3, 64));
    LevaModel rw(FastLevaConfig(EmbeddingMethod::kRandomWalk, 3, 64));

    std::vector<double> scores;
    for (EmbeddingModel* m :
         std::vector<EmbeddingModel*>{&word2vec, &node2vec, &embdi, &deeper,
                                      &mf, &rw}) {
      scores.push_back(
          bench::CheckOk(EvaluateEmbeddingModel(m, task, model, 1), "eval"));
    }
    table.PrintRow(name, scores);
  }
  std::printf("\n(paper Table 5: Leva MF/RW outperform Word2Vec, Node2Vec, "
              "EmbDI and DeepER by 3-10 points)\n");
}

}  // namespace
}  // namespace leva

int main() {
  leva::Run();
  return 0;
}
