// Reproduces Table 8: entity resolution F1 of EmbDI-S (no preprocessing),
// EmbDI-F (with input transformations), DeepER and Leva on three dirty-pair
// datasets of increasing difficulty.
//
// Expected shape: Leva beats the no-preprocessing baselines (EmbDI-S,
// DeepER); EmbDI-F's input transformations keep it competitive.
#include <cstdio>

#include "baselines/corpus_models.h"
#include "baselines/graph_models.h"
#include "baselines/leva_model.h"
#include "bench/bench_util.h"
#include "datagen/er_data.h"
#include "er/entity_resolution.h"

namespace leva {
namespace {

double RunModel(EmbeddingModel* model, const ErDataset& dataset) {
  const auto db = bench::CheckOk(ErDatabase(dataset), "db");
  bench::CheckOk(model->Fit(db), "fit");
  const auto result =
      bench::CheckOk(EvaluateEntityResolution(*model, dataset), "eval");
  return result.f1;
}

void Run() {
  std::printf("== Table 8: entity resolution F1 ==\n");
  bench::TablePrinter table(
      {"dataset", "EmbDI-S", "EmbDI-F", "DeepER", "Leva"}, 20);
  table.PrintHeader();

  Word2VecOptions w2v;
  w2v.dim = 48;
  w2v.epochs = 2;

  for (const std::string name :
       {"beeradvo_ratebeer", "walmart_amazon", "amazon_google"}) {
    const auto dataset = bench::CheckOk(ErDatasetByName(name), "dataset");

    EmbdiModel embdi_s(false, w2v, {}, 5);
    EmbdiModel embdi_f(true, w2v, {}, 5);
    DeeperModel deeper(w2v, {}, 5);
    LevaConfig leva_config;
    leva_config.method = EmbeddingMethod::kMatrixFactorization;
    leva_config.embedding_dim = 48;
    leva_config.featurization = Featurization::kRowOnly;
    leva_config.seed = 5;
    LevaModel leva(leva_config);

    table.PrintRow(name, {RunModel(&embdi_s, dataset),
                          RunModel(&embdi_f, dataset),
                          RunModel(&deeper, dataset), RunModel(&leva, dataset)});
  }
  std::printf("\n(paper Table 8: Leva > EmbDI-S and DeepER on all datasets; "
              "EmbDI-F wins some thanks to input transformation)\n");
}

}  // namespace
}  // namespace leva

int main() {
  leva::Run();
  return 0;
}
