// Engineering micro-benchmarks (google-benchmark) for the hot kernels:
// graph construction, alias-table sampling, sparse mat-mul, randomized SVD,
// and random-walk generation.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/simd.h"
#include "core/pipeline.h"
#include "embed/embedding.h"
#include "datagen/synthetic.h"
#include "embed/mf.h"
#include "embed/walks.h"
#include "embed/word2vec.h"
#include "graph/alias.h"
#include "graph/graph.h"
#include "la/decomp.h"
#include "la/sparse.h"
#include "ml/featurize.h"
#include "text/textifier.h"

namespace leva {
namespace {

// Shared fixture state: a mid-sized textified database and its graph.
struct Fixture {
  Database db;
  Textifier textifier;
  std::vector<TextifiedTable> textified;
  LevaGraph graph;

  Fixture() {
    SyntheticConfig c;
    c.base_rows = 2000;
    c.dims = {
        {.name = "d1", .rows = 300, .predictive_numeric = 2,
         .predictive_categorical = 2, .noise_numeric = 1,
         .noise_categorical = 1, .categories = 10, .parent = ""},
        {.name = "d2", .rows = 300, .predictive_numeric = 1,
         .predictive_categorical = 1, .noise_numeric = 1,
         .noise_categorical = 1, .categories = 10, .parent = ""},
    };
    c.seed = 3;
    db = std::move(GenerateSynthetic(c).value().db);
    (void)textifier.Fit(db);
    for (const Table& t : db.tables()) {
      textified.push_back(std::move(textifier.Transform(t)).value());
    }
    graph = std::move(BuildGraph(textified, textifier.NumAttributes()).value());
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_Textify(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    for (const Table& t : f.db.tables()) {
      benchmark::DoNotOptimize(f.textifier.Transform(t));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.db.TotalRows()));
}
BENCHMARK(BM_Textify);

void BM_GraphConstruction(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildGraph(f.textified, f.textifier.NumAttributes()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.db.TotalRows()));
}
BENCHMARK(BM_GraphConstruction);

void BM_AliasSample(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  for (double& w : weights) w = rng.Uniform(0.1, 10.0);
  AliasTable table(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(&rng));
  }
}
BENCHMARK(BM_AliasSample)->Arg(16)->Arg(1024)->Arg(65536);

void BM_SparseMultiply(benchmark::State& state) {
  Fixture& f = GetFixture();
  const SparseMatrix m = BuildProximityMatrix(f.graph, 1e-3);
  Rng rng(2);
  const Matrix x = Matrix::GaussianRandom(m.cols(), 32, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Multiply(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m.nnz()) * 32);
}
BENCHMARK(BM_SparseMultiply);

void BM_RandomizedSVD(benchmark::State& state) {
  Fixture& f = GetFixture();
  const SparseMatrix m = BuildProximityMatrix(f.graph, 1e-3);
  Rng rng(3);
  RandomizedSvdOptions options;
  options.rank = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RandomizedSVD(m, options, &rng));
  }
}
BENCHMARK(BM_RandomizedSVD)->Arg(16)->Arg(64);

void BM_WalkGeneration(benchmark::State& state) {
  Fixture& f = GetFixture();
  WalkOptions options;
  options.epochs = 1;
  options.walk_length = 20;
  options.weighted = state.range(0) != 0;
  WalkGenerator generator(&f.graph, options);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.Generate(&rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.graph.NumNodes()) * 20);
}
BENCHMARK(BM_WalkGeneration)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// Thread-scaling benchmarks for the shared execution layer. The argument is
// the worker count; the `items_per_second` column across 1/2/4/8 threads is
// the speedup table. Emit it as JSON with
//   micro_kernels --benchmark_filter=Threads --benchmark_format=json \
//                 --benchmark_out=scaling.json
// ---------------------------------------------------------------------------

void BM_GemmThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  Rng rng(5);
  const Matrix a = Matrix::GaussianRandom(384, 256, &rng);
  const Matrix b = Matrix::GaussianRandom(256, 128, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b, threads));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(a.rows() * a.cols() * b.cols()));
}
BENCHMARK(BM_GemmThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SparseMultiplyThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  Fixture& f = GetFixture();
  const SparseMatrix m = BuildProximityMatrix(f.graph, 1e-3);
  Rng rng(6);
  const Matrix x = Matrix::GaussianRandom(m.cols(), 32, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Multiply(x, threads));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m.nnz()) * 32);
}
BENCHMARK(BM_SparseMultiplyThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_WalkGenerationThreads(benchmark::State& state) {
  Fixture& f = GetFixture();
  WalkOptions options;
  options.epochs = 1;
  options.walk_length = 20;
  options.threads = static_cast<size_t>(state.range(0));
  WalkGenerator generator(&f.graph, options);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.Generate(&rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.graph.NumNodes()) * 20);
}
BENCHMARK(BM_WalkGenerationThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---------------------------------------------------------------------------
// FeaturizeThroughput: serving-path rows/sec, legacy row-at-a-time vs the
// batched fast path (column-wise textify + token interning + blocked
// parallel gather). The `items_per_second` column is the throughput table
// recorded in EXPERIMENTS.md. Args are {threads, rows_in_graph}.
// ---------------------------------------------------------------------------

struct FeaturizeFixture {
  SyntheticDataset data;
  LevaPipeline pipeline;
  TargetEncoder encoder;
  const Table* base = nullptr;

  FeaturizeFixture() {
    SyntheticConfig c;
    c.base_rows = 2000;
    c.dims = {
        {.name = "d1", .rows = 300, .predictive_numeric = 2,
         .predictive_categorical = 2, .noise_numeric = 1,
         .noise_categorical = 1, .categories = 10, .parent = ""},
        {.name = "d2", .rows = 300, .predictive_numeric = 1,
         .predictive_categorical = 1, .noise_numeric = 1,
         .noise_categorical = 1, .categories = 10, .parent = ""},
    };
    c.seed = 3;
    data = std::move(GenerateSynthetic(c).value());
    LevaConfig lc;
    lc.method = EmbeddingMethod::kMatrixFactorization;
    lc.embedding_dim = 64;
    lc.threads = 1;
    pipeline = LevaPipeline(lc);
    (void)pipeline.Fit(data.db);
    base = data.db.FindTable(data.base_table);
    (void)encoder.Fit(*base->FindColumn(data.target_column),
                      data.classification);
  }
};

FeaturizeFixture& GetFeaturizeFixture() {
  static FeaturizeFixture* fixture = new FeaturizeFixture();
  return *fixture;
}

void BM_FeaturizeLegacy(benchmark::State& state) {
  FeaturizeFixture& f = GetFeaturizeFixture();
  const bool rows_in_graph = state.range(0) != 0;
  f.pipeline.set_serving_options(1, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.pipeline.FeaturizeLegacy(
        *f.base, f.data.target_column, f.encoder, rows_in_graph));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.base->NumRows()));
}
BENCHMARK(BM_FeaturizeLegacy)->Arg(0)->Arg(1);

void BM_FeaturizeBatched(benchmark::State& state) {
  FeaturizeFixture& f = GetFeaturizeFixture();
  const size_t threads = static_cast<size_t>(state.range(0));
  const bool rows_in_graph = state.range(1) != 0;
  f.pipeline.set_serving_options(threads, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.pipeline.Featurize(
        *f.base, f.data.target_column, f.encoder, rows_in_graph));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.base->NumRows()));
}
BENCHMARK(BM_FeaturizeBatched)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1});

// ---------------------------------------------------------------------------
// DequantGather: the fused per-tier accumulate kernels of the featurize
// gather — a[j] += w * dequant(row[j]) — over a synthetic occurrence stream.
// items_per_second is accumulated elements/sec; compare the three tiers to
// see the SIMD dequant riding the narrower loads (bf16 reads 4x, int8 8x
// fewer bytes per element than fp64).
// ---------------------------------------------------------------------------

struct DequantFixture {
  static constexpr size_t kRows = 4096;
  static constexpr size_t kDim = 256;
  std::vector<double> fp64;
  std::vector<uint16_t> bf16;
  std::vector<int8_t> q8;
  std::vector<float> scales;
  std::vector<size_t> order;  // shuffled row visit order, reused every pass

  DequantFixture() {
    Rng rng(21);
    fp64.resize(kRows * kDim);
    for (double& v : fp64) v = rng.Uniform(-2.0, 2.0);
    bf16.resize(kRows * kDim);
    for (size_t i = 0; i < fp64.size(); ++i) {
      bf16[i] = simd::Bf16FromFloat(static_cast<float>(fp64[i]));
    }
    q8.resize(kRows * kDim);
    scales.resize(kRows);
    for (size_t r = 0; r < kRows; ++r) {
      QuantizeRowInt8(fp64.data() + r * kDim, kDim, q8.data() + r * kDim,
                      &scales[r]);
    }
    order.resize(kRows);
    for (size_t r = 0; r < kRows; ++r) order[r] = r;
    for (size_t r = kRows - 1; r > 0; --r) {
      std::swap(order[r], order[rng.Next() % (r + 1)]);
    }
  }
};

DequantFixture& GetDequantFixture() {
  static DequantFixture* fixture = new DequantFixture();
  return *fixture;
}

void BM_DequantGatherF64(benchmark::State& state) {
  DequantFixture& f = GetDequantFixture();
  std::vector<double> acc(DequantFixture::kDim, 0.0);
  for (auto _ : state) {
    for (const size_t r : f.order) {
      const double* __restrict vec = f.fp64.data() + r * DequantFixture::kDim;
      double* __restrict a = acc.data();
      for (size_t j = 0; j < DequantFixture::kDim; ++j) a[j] += 0.25 * vec[j];
    }
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(DequantFixture::kRows * DequantFixture::kDim));
}
BENCHMARK(BM_DequantGatherF64);

void BM_DequantGatherBf16(benchmark::State& state) {
  DequantFixture& f = GetDequantFixture();
  std::vector<double> acc(DequantFixture::kDim, 0.0);
  for (auto _ : state) {
    for (const size_t r : f.order) {
      simd::GatherAddBf16(acc.data(), f.bf16.data() + r * DequantFixture::kDim,
                          0.25, DequantFixture::kDim);
    }
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(DequantFixture::kRows * DequantFixture::kDim));
}
BENCHMARK(BM_DequantGatherBf16);

void BM_DequantGatherI8(benchmark::State& state) {
  DequantFixture& f = GetDequantFixture();
  std::vector<double> acc(DequantFixture::kDim, 0.0);
  for (auto _ : state) {
    for (const size_t r : f.order) {
      simd::DequantGatherAdd(acc.data(), f.q8.data() + r * DequantFixture::kDim,
                             static_cast<double>(f.scales[r]), 0.25,
                             DequantFixture::kDim);
    }
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(DequantFixture::kRows * DequantFixture::kDim));
}
BENCHMARK(BM_DequantGatherI8);

// Row-at-a-time dequantization (the Get/GetById scratch path), for the
// serving calls that need a full fp64 row rather than a fused accumulate.
void BM_DequantRowI8(benchmark::State& state) {
  DequantFixture& f = GetDequantFixture();
  std::vector<double> row(DequantFixture::kDim);
  for (auto _ : state) {
    for (const size_t r : f.order) {
      simd::DequantRowI8(row.data(), f.q8.data() + r * DequantFixture::kDim,
                         static_cast<double>(f.scales[r]),
                         DequantFixture::kDim);
    }
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(DequantFixture::kRows * DequantFixture::kDim));
}
BENCHMARK(BM_DequantRowI8);

// ---------------------------------------------------------------------------
// WalkCorpusGen: corpus generation into the legacy nested representation
// (one heap vector per walk) vs the flat corpus (contiguous token buffer +
// offsets). items_per_second is walk steps per second.
// ---------------------------------------------------------------------------

void BM_WalkCorpusGenNested(benchmark::State& state) {
  Fixture& f = GetFixture();
  WalkOptions options;
  options.epochs = 1;
  options.walk_length = 20;
  options.threads = 1;
  WalkGenerator generator(&f.graph, options);
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.GenerateNested(&rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.graph.NumNodes()) * 20);
}
BENCHMARK(BM_WalkCorpusGenNested);

void BM_WalkCorpusGenFlat(benchmark::State& state) {
  Fixture& f = GetFixture();
  WalkOptions options;
  options.epochs = 1;
  options.walk_length = 20;
  options.threads = static_cast<size_t>(state.range(0));
  WalkGenerator generator(&f.graph, options);
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.Generate(&rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.graph.NumNodes()) * 20);
}
BENCHMARK(BM_WalkCorpusGenFlat)->Arg(1)->Arg(4);

// ---------------------------------------------------------------------------
// Word2VecThroughput: skip-gram training tokens/sec over a fixed walk
// corpus — the reference trainer vs the SIMD fast path (sequential and
// Hogwild) vs the deterministic-parallel merge trainer. The argument is the
// worker count; items_per_second is corpus tokens per epoch-pass per second.
// ---------------------------------------------------------------------------

struct W2VFixture {
  FlatCorpus flat;
  WalkCorpus nested;
  size_t vocab = 0;

  W2VFixture() {
    Fixture& f = GetFixture();
    WalkOptions options;
    options.epochs = 1;
    options.walk_length = 20;
    options.threads = 1;
    Rng r1(11);
    Rng r2(11);
    WalkGenerator g1(&f.graph, options);
    flat = std::move(g1.Generate(&r1)).value();
    WalkGenerator g2(&f.graph, options);
    nested = std::move(g2.GenerateNested(&r2)).value();
    vocab = f.graph.NumNodes();
  }
};

W2VFixture& GetW2VFixture() {
  static W2VFixture* fixture = new W2VFixture();
  return *fixture;
}

Word2VecOptions W2VBenchOptions() {
  Word2VecOptions options;
  options.dim = 64;
  options.epochs = 1;
  return options;
}

void BM_Word2VecThroughputLegacy(benchmark::State& state) {
  W2VFixture& w = GetW2VFixture();
  const Word2VecOptions options = W2VBenchOptions();
  for (auto _ : state) {
    Word2Vec model(options);
    Rng rng(12);
    benchmark::DoNotOptimize(model.TrainLegacy(w.nested, w.vocab, &rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.flat.num_tokens()));
}
BENCHMARK(BM_Word2VecThroughputLegacy);

void BM_Word2VecThroughputFast(benchmark::State& state) {
  W2VFixture& w = GetW2VFixture();
  Word2VecOptions options = W2VBenchOptions();
  options.threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Word2Vec model(options);
    Rng rng(12);
    benchmark::DoNotOptimize(model.Train(w.flat, w.vocab, &rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.flat.num_tokens()));
}
BENCHMARK(BM_Word2VecThroughputFast)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Word2VecThroughputDeterministic(benchmark::State& state) {
  W2VFixture& w = GetW2VFixture();
  Word2VecOptions options = W2VBenchOptions();
  options.deterministic = true;
  options.threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Word2Vec model(options);
    Rng rng(12);
    benchmark::DoNotOptimize(model.Train(w.flat, w.vocab, &rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.flat.num_tokens()));
}
BENCHMARK(BM_Word2VecThroughputDeterministic)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace leva

BENCHMARK_MAIN();
