// Reproduces Table 3: percentile L1 distances between node embeddings for
// Within-Entity row groups vs Randomly selected groups, plus the ratio of the
// median distances. Within-entity distances must be smaller (ratio < 1):
// the embedding represents related rows close together (Section 5.1).
#include <algorithm>
#include <cstdio>
#include <map>

#include "baselines/experiment.h"
#include "baselines/leva_model.h"
#include "bench/bench_util.h"
#include "datagen/datasets.h"

namespace leva {
namespace {

// Median pairwise L1 distance of up to `group_size` embedded rows.
double GroupMedianDistance(const Embedding& emb, const std::string& table,
                           const std::vector<size_t>& rows) {
  std::vector<double> distances;
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = i + 1; j < rows.size(); ++j) {
      const auto a = emb.Get(table + ":" + std::to_string(rows[i]));
      const auto b = emb.Get(table + ":" + std::to_string(rows[j]));
      if (a.empty() || b.empty()) continue;
      distances.push_back(Embedding::L1Distance(a, b));
    }
  }
  std::sort(distances.begin(), distances.end());
  return bench::Percentile(distances, 50);
}

void Run() {
  constexpr size_t kGroupSize = 5;
  constexpr size_t kMaxEntities = 1000;

  bench::TablePrinter table({"dataset", "method", "within50", "within90",
                             "random50", "random90", "ratio50"});
  std::printf("== Table 3: percentile L1 distances, Within-Entity vs Random "
              "groups ==\n");
  table.PrintHeader();

  for (const std::string name : {"genes", "bio", "financial"}) {
    auto config = bench::CheckOk(DatasetConfigByName(name), "config");
    auto data = bench::CheckOk(GenerateSynthetic(config), "generate");
    auto task =
        bench::CheckOk(PrepareTask(std::move(data), 0.25, 33), "prepare");

    // Ground truth entity groups: base rows sharing the first FK value.
    const Table* base = task.data.db.FindTable("base");
    std::string fk_column;
    for (const Column& c : base->columns()) {
      if (c.name.rfind("fk_", 0) == 0) {
        fk_column = c.name;
        break;
      }
    }
    std::map<std::string, std::vector<size_t>> groups;
    for (size_t r = 0; r < base->NumRows(); ++r) {
      const Value& v = base->FindColumn(fk_column)->values[r];
      if (!v.is_null()) groups[v.ToDisplayString()].push_back(r);
    }

    for (const EmbeddingMethod method :
         {EmbeddingMethod::kRandomWalk,
          EmbeddingMethod::kMatrixFactorization}) {
      LevaModel model(FastLevaConfig(method, 42, 64));
      bench::CheckOk(model.Fit(task.fit_db), "fit");
      const Embedding& emb = model.embedding();

      Rng rng(7);
      std::vector<double> within;
      std::vector<double> random;
      size_t produced = 0;
      for (const auto& [key, rows] : groups) {
        if (rows.size() < 2) continue;
        std::vector<size_t> group = rows;
        if (group.size() > kGroupSize) group.resize(kGroupSize);
        within.push_back(GroupMedianDistance(emb, "base", group));
        std::vector<size_t> rand_rows(group.size());
        for (size_t& r : rand_rows) r = rng.UniformInt(base->NumRows());
        random.push_back(GroupMedianDistance(emb, "base", rand_rows));
        if (++produced >= kMaxEntities) break;
      }
      const bench::LatencySummary w = bench::SummarizeLatencies(within);
      const bench::LatencySummary r = bench::SummarizeLatencies(random);
      const double ratio = r.p50 > 0 ? w.p50 / r.p50 : 0.0;
      std::printf("%-12s%-12s", name.c_str(),
                  method == EmbeddingMethod::kRandomWalk ? "RW" : "MF");
      std::printf("%-12.3f%-12.3f%-12.3f%-12.3f%-12.3f\n", w.p50, w.p90,
                  r.p50, r.p90, ratio);
    }
  }
  std::printf("\n(paper Table 3: within-entity distances below random; ratio "
              "of medians < 1)\n");
}

}  // namespace
}  // namespace leva

int main() {
  leva::Run();
  return 0;
}
