// Reproduces Table 7: accuracy on the Genes-shaped dataset when an embedding
// trained at dimension D (rows) is PCA-projected down to dimension r
// (columns). The diagonal is the un-projected accuracy.
//
// Expected shape: moderate dimensions (~50-100) already match or beat larger
// ones; projecting down loses only a moderate amount of accuracy, so users
// can shrink stored embeddings without retraining.
#include <cstdio>

#include "baselines/experiment.h"
#include "baselines/leva_model.h"
#include "bench/bench_util.h"
#include "datagen/datasets.h"
#include "la/decomp.h"
#include "ml/linear.h"
#include "ml/metrics.h"

namespace leva {
namespace {

double EvalLogistic(const MLDataset& train, const MLDataset& test,
                    size_t num_classes, uint64_t seed) {
  Rng rng(seed);
  ElasticNetOptions options;
  options.lambda = 1e-3;
  options.epochs = 50;
  LogisticRegressor model(num_classes, options);
  bench::CheckOk(model.Fit(train.x, train.y, &rng), "fit");
  return Accuracy(test.y, model.Predict(test.x));
}

void Run() {
  std::printf("== Table 7: accuracy (genes) with embedding size before/after "
              "PCA projection ==\n");
  const std::vector<size_t> dims = {5, 25, 50, 100, 200};

  auto config = bench::CheckOk(DatasetConfigByName("genes"), "config");
  auto data = bench::CheckOk(GenerateSynthetic(config), "generate");
  auto task =
      bench::CheckOk(PrepareTask(std::move(data), 0.25, 81), "prepare");
  const size_t classes = task.encoder.num_classes();

  std::printf("%-10s", "orig\\proj");
  for (const size_t r : dims) std::printf("%-10zu", r);
  std::printf("\n");

  for (const size_t d : dims) {
    LevaConfig cfg =
        FastLevaConfig(EmbeddingMethod::kMatrixFactorization, 42, d);
    cfg.featurization = Featurization::kRowOnly;
    LevaModel model(cfg);
    bench::CheckOk(model.Fit(task.fit_db), "fit");
    const auto datasets = bench::CheckOk(FeaturizeTask(model, task), "feat");

    std::printf("%-10zu", d);
    for (const size_t r : dims) {
      if (r > d) {
        std::printf("%-10s", "");
        continue;
      }
      MLDataset train = datasets.first;
      MLDataset test = datasets.second;
      if (r < d) {
        const PCA pca = bench::CheckOk(PCA::Fit(train.x, r), "pca");
        train.x = pca.Transform(train.x);
        test.x = pca.Transform(test.x);
        train.feature_names.resize(r);
        test.feature_names.resize(r);
      }
      std::printf("%-10.3f", EvalLogistic(train, test, classes, 1));
    }
    std::printf("\n");
  }
  std::printf("\n(paper Table 7: larger sizes are not always better; "
              "projection loses only moderate accuracy)\n");
}

}  // namespace
}  // namespace leva

int main() {
  leva::Run();
  return 0;
}
